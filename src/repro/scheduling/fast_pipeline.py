"""Vectorized fast path of the coarse-grained pipeline simulator.

The reference simulator (:func:`repro.scheduling.pipeline.simulate_coarse_pipeline`
with ``engine="reference"``) walks a pure-Python ``jobs x stages`` loop and
materializes one :class:`~repro.scheduling.timeline.TimelineEvent` per (job,
stage).  The serving stack calls it thousands of times per sweep, so this
module re-expresses the same recurrence as NumPy *max-plus scans* over the
completion matrix:

with ``c[j]`` the completion of job ``j`` at one stage, ``r[j]`` its
readiness (previous stage / previous layer / barrier) and ``L[j]`` its
latency, the reference recurrence ``c[j] = max(r[j], c[j-1]) + L[j]`` has the
closed form::

    c[j] = P[j] + max(carry, max_{k<=j}(r[k] - P[k-1]))   where P = cumsum(L)

i.e. one ``cumsum`` plus one ``maximum.accumulate`` per (block, stage, chain)
instead of a Python loop over jobs.  Replicated stages are independent scan
chains (job ``j`` runs on replica ``j mod R``).  Stage latencies are computed
once per *unique* billed length (lengths in a batch repeat heavily) and
gathered into a ``jobs x stages`` table.

The job list is cut into *blocks* -- maximal contiguous runs in which no
sequence appears twice and no barrier fires -- so the layer dependency and
barrier gating always reference fully-computed earlier blocks.  Layer-ordered
job lists (every scheduler in :mod:`repro.scheduling`) decompose into one
block per encoder layer; since all layers carry identical work, the block
recurrence reaches an exactly periodic steady state (the max-plus cycle
time), which is detected and the remaining layers extrapolated in O(1).

Exactness: every completion cycle equals the reference implementation's
bit-for-bit (integer arithmetic throughout); the equivalence is pinned by
``tests/scheduling/test_fast_pipeline.py``.  Unsupported parameter
combinations (finite ``buffer_slots`` under pipelining) raise
:class:`FastPathUnsupported` and the caller falls back to the reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hardware.accelerator import Accelerator
    from .pipeline import PipelineJob

__all__ = [
    "FastPathUnsupported",
    "FastSchedule",
    "fast_path_supported",
    "simulate_fast",
    "simulate_fast_arrays",
    "simulate_fast_layered",
    "stage_latency_table",
]


class FastPathUnsupported(Exception):
    """The vectorized engine cannot model this parameter combination."""


def fast_path_supported(pipelined: bool, buffer_slots: int | None) -> bool:
    """Whether the vectorized engine covers this simulator configuration.

    Finite inter-stage buffers introduce a forward-stage dependency
    (``completion[j - slots][s + 1]``) that breaks the stage-major scan
    order; the non-pipelined mode serializes jobs completely, which dominates
    every other constraint, so it is supported for *any* parameters.
    """
    return (not pipelined) or buffer_slots is None


def stage_latency_table(accelerator: "Accelerator", billed: np.ndarray) -> np.ndarray:
    """Per-job stage latencies, computed once per unique billed length.

    Returns an ``[num_jobs, num_stages]`` int64 matrix.  Batches repeat
    lengths heavily (and quantized caching makes them repeat even more), so
    the accelerator's cycle model runs once per *unique* length only.
    """
    unique, inverse = np.unique(billed, return_inverse=True)
    table = np.array(
        [accelerator.stage_latencies(int(length)) for length in unique], dtype=np.int64
    )
    return table[inverse]


@dataclass
class FastSchedule:
    """Vectorized schedule summary: everything the hot path reads, no events.

    ``stage_busy`` / ``stage_first_start`` / ``stage_last_end`` are keyed by
    the reference timeline's stage labels (``"<name>[replica]"`` for
    replicated stages) and ``stage_label_order`` preserves the reference's
    order of first appearance so float reductions reproduce the reference
    bit-for-bit.
    """

    num_jobs: int
    num_stages: int
    makespan: int
    #: Latest cycle at which any job leaves the entry stage (continuous
    #: batching admits the next batch at this instant).
    entry_admit_cycles: int
    #: sequence_id -> cycle its last job leaves the last stage.
    sequence_completion: dict[int, int]
    stage_label_order: list[str]
    stage_busy: dict[str, int]
    stage_first_start: dict[str, int]
    stage_last_end: dict[str, int]

    def average_utilization(self) -> float:
        """Mean per-stage-label utilization (matches ``Timeline.average_utilization``)."""
        if not self.stage_label_order:
            return 0.0
        total = 0.0
        for label in self.stage_label_order:
            span = self.stage_last_end[label] - self.stage_first_start[label]
            total += self.stage_busy[label] / span if span > 0 else 0.0
        return total / len(self.stage_label_order)

    def total_bubble_cycles(self) -> int:
        """Idle cycles inside every stage label's active span."""
        return sum(
            max(self.stage_last_end[label] - self.stage_first_start[label] - busy, 0)
            for label, busy in self.stage_busy.items()
        )


# ---------------------------------------------------------------------------
# Scan primitives
# ---------------------------------------------------------------------------


def _scan(ready: np.ndarray, lat: np.ndarray, carry: int) -> tuple[np.ndarray, int]:
    """Solve ``c[j] = max(ready[j], c[j-1]) + lat[j]`` with ``c[-1] = carry``."""
    prefix = lat.cumsum()
    # ready[j] - P[j-1]; the carry competes as a virtual k = -1 term.
    offsets = ready - prefix + lat  # fresh array: safe to patch in place
    if carry > offsets[0]:
        offsets[0] = carry
    peaks = np.maximum.accumulate(offsets)
    completion = prefix + peaks
    return completion, int(completion[-1])


def _solve_block(
    lat_blk: np.ndarray,
    ready0: np.ndarray,
    chain_tails: list[np.ndarray],
    global_start: int,
    replication: Sequence[int],
) -> np.ndarray:
    """Completion matrix of one block (no internal barriers / repeats)."""
    n, num_stages = lat_blk.shape
    comp = np.empty((n, num_stages), dtype=np.int64)
    prev = ready0
    for s in range(num_stages):
        r = replication[s]
        if r == 1:
            comp[:, s], tail = _scan(prev, lat_blk[:, s], int(chain_tails[s][0]))
            chain_tails[s][0] = tail
        else:
            out = np.empty(n, dtype=np.int64)
            for c in range(r):
                first = (c - global_start) % r
                if first >= n:
                    continue
                sel = slice(first, n, r)
                out[sel], tail = _scan(prev[sel], lat_blk[sel, s], int(chain_tails[s][c]))
                chain_tails[s][c] = tail
            comp[:, s] = out
        prev = comp[:, s]
    return comp


# ---------------------------------------------------------------------------
# Block decomposition
# ---------------------------------------------------------------------------


def _block_bounds(seq: np.ndarray, barriers: set[int]) -> list[tuple[int, int]]:
    """Cut jobs into maximal runs with unique sequences and no barrier inside."""
    bounds: list[tuple[int, int]] = []
    start = 0
    seen: set[int] = set()
    for j, s in enumerate(seq.tolist()):
        if j > start and (j in barriers or s in seen):
            bounds.append((start, j))
            start = j
            seen = set()
        elif j == start:
            seen = set()
        seen.add(s)
    bounds.append((start, len(seq)))
    return bounds


def _stage_labels(names: list[str], replication: list[int], num_jobs: int) -> list[str]:
    """Stage labels in the reference timeline's order of first appearance.

    The reference emits events job-major; label ``name[c]`` of a replicated
    stage first appears with job ``c``, an un-replicated stage's plain label
    with job 0.
    """
    labels: list[str] = []
    max_r = max(replication)
    for j in range(min(num_jobs, max_r)):
        for s, name in enumerate(names):
            if replication[s] == 1:
                if j == 0:
                    labels.append(name)
            elif j < replication[s]:
                labels.append(f"{name}[{j}]")
    return labels


def _chain_busy(lat_all: np.ndarray, replication: list[int]) -> list[np.ndarray]:
    """Total busy cycles per (stage, replica chain)."""
    num_jobs = lat_all.shape[0]
    busy: list[np.ndarray] = []
    for s, r in enumerate(replication):
        if r == 1:
            busy.append(np.array([lat_all[:, s].sum()], dtype=np.int64))
        else:
            chains = np.arange(num_jobs, dtype=np.int64) % r
            busy.append(
                np.bincount(chains, weights=lat_all[:, s], minlength=r).astype(np.int64)
            )
    return busy


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def simulate_fast(
    accelerator: "Accelerator",
    jobs: "list[PipelineJob]",
    pipelined: bool = True,
    buffer_slots: int | None = None,
    barriers: set[int] | None = None,
) -> FastSchedule:
    """Vectorized equivalent of the reference coarse-pipeline recurrence.

    Raises :class:`FastPathUnsupported` for parameter combinations the scan
    formulation cannot express (finite ``buffer_slots`` while pipelined).
    """
    if not jobs:
        raise ValueError("simulate_fast needs at least one job")
    num_jobs = len(jobs)
    billed = np.fromiter((job.billed_length for job in jobs), dtype=np.int64, count=num_jobs)
    seq = np.fromiter((job.sequence_id for job in jobs), dtype=np.int64, count=num_jobs)
    return simulate_fast_arrays(
        accelerator, billed, seq, pipelined=pipelined, buffer_slots=buffer_slots, barriers=barriers
    )


def simulate_fast_arrays(
    accelerator: "Accelerator",
    billed: np.ndarray,
    seq: np.ndarray,
    pipelined: bool = True,
    buffer_slots: int | None = None,
    barriers: set[int] | None = None,
) -> FastSchedule:
    """Array-level entry: ``billed[j]`` / ``seq[j]`` describe job ``j`` directly.

    The schedulers call this to skip :class:`PipelineJob` object construction
    entirely on the hot path (the job list is only rebuilt if the lazy
    timeline is materialized).
    """
    if not fast_path_supported(pipelined, buffer_slots):
        raise FastPathUnsupported("finite buffer_slots require the reference engine")
    if billed.size == 0:
        raise ValueError("simulate_fast needs at least one job")
    barriers = barriers or set()
    names = [stage.name for stage in accelerator.stages]
    replication = [max(getattr(stage, "replication", 1), 1) for stage in accelerator.stages]
    num_jobs = int(billed.size)
    num_stages = len(names)
    lat_all = stage_latency_table(accelerator, billed)

    if not pipelined:
        comp = _sequential_completions(lat_all)
        return _summarize(comp, lat_all, seq, names, replication)

    seq_ids, seq_idx = np.unique(seq, return_inverse=True)
    seq_done = np.zeros(len(seq_ids), dtype=np.int64)
    chain_tails = [np.zeros(r, dtype=np.int64) for r in replication]
    bounds = _block_bounds(seq, barriers)
    periodic = _is_periodic(bounds, barriers, seq_idx, lat_all, replication)

    head_comps: list[np.ndarray] = []
    max_r = max(replication)
    prev_state: np.ndarray | None = None
    shift = 0  # accumulated extrapolation shift (cycles)
    block_index = 0
    while block_index < len(bounds):
        a, b = bounds[block_index]
        ready0 = seq_done[seq_idx[a:b]]
        if a in barriers:
            barrier_done = int(chain_tails[num_stages - 1].max(initial=0))
            if barrier_done > ready0[0]:
                ready0 = ready0.copy()
                ready0[0] = barrier_done
        comp = _solve_block(lat_all[a:b], ready0, chain_tails, a, replication)
        seq_done[seq_idx[a:b]] = comp[:, -1]
        if a < max_r:
            # Keep completions covering the first job of every replica chain
            # (job c of chain c); they pin each stage label's first start.
            head_comps.append(comp)
        if periodic and block_index >= 1 and b > max_r:
            state = np.concatenate([seq_done, *chain_tails])
            if prev_state is not None:
                delta = state - prev_state
                step = int(delta[0])
                if step > 0 and bool(np.all(delta == step)):
                    remaining = len(bounds) - 1 - block_index
                    shift = step * remaining
                    seq_done += shift
                    for tails in chain_tails:
                        tails += shift
                    break
            prev_state = state
        block_index += 1

    head = np.concatenate(head_comps, axis=0) if head_comps else np.empty((0, num_stages))
    return _summarize_from_state(
        head, lat_all, seq, seq_ids, seq_done, chain_tails, names, replication
    )


def _is_periodic(
    bounds: list[tuple[int, int]],
    barriers: set[int],
    seq_idx: np.ndarray,
    lat_all: np.ndarray,
    replication: list[int],
) -> bool:
    """Whether the blocks repeat one identical layer pattern (extrapolatable)."""
    if barriers or len(bounds) < 4:
        return False
    period = bounds[0][1]
    if any(b - a != period for a, b in bounds):
        return False
    if any(r > 1 and period % r != 0 for r in replication):
        return False
    layers = len(bounds)
    if not np.array_equal(seq_idx.reshape(layers, period), np.tile(seq_idx[:period], (layers, 1))):
        return False
    return bool(
        np.array_equal(
            lat_all.reshape(layers, period, -1),
            np.broadcast_to(lat_all[:period], (layers, period, lat_all.shape[1])),
        )
    )


def _sequential_completions(lat_all: np.ndarray) -> np.ndarray:
    """Closed form of the non-pipelined mode: jobs serialize completely.

    The entry gate ``completion[j-1][last]`` dominates every other constraint
    (chain, layer, barrier, and buffer gates all reference earlier jobs'
    completions, which never exceed the previous job's final one), so the
    completion matrix is a running sum of whole-job latencies plus each job's
    internal stage prefix.
    """
    within = np.cumsum(lat_all, axis=1)
    totals = within[:, -1]
    offsets = np.concatenate(([0], np.cumsum(totals)[:-1]))
    return within + offsets[:, None]


def _summarize(
    comp: np.ndarray,
    lat_all: np.ndarray,
    seq: np.ndarray,
    names: list[str],
    replication: list[int],
) -> FastSchedule:
    """Build the summary from a fully materialized completion matrix."""
    num_jobs, num_stages = comp.shape
    seq_ids, seq_idx = np.unique(seq, return_inverse=True)
    seq_done = np.zeros(len(seq_ids), dtype=np.int64)
    np.maximum.at(seq_done, seq_idx, comp[:, -1])
    chain_tails = []
    for s, r in enumerate(replication):
        tails = np.zeros(r, dtype=np.int64)
        np.maximum.at(tails, np.arange(num_jobs, dtype=np.int64) % r, comp[:, s])
        chain_tails.append(tails)
    return _summarize_from_state(
        comp, lat_all, seq, seq_ids, seq_done, chain_tails, names, replication
    )


def _summarize_from_state(
    head_comp: np.ndarray,
    lat_all: np.ndarray,
    seq: np.ndarray,
    seq_ids: np.ndarray,
    seq_done: np.ndarray,
    chain_tails: list[np.ndarray],
    names: list[str],
    replication: list[int],
) -> FastSchedule:
    """Build the summary from final chain tails plus the head completions.

    ``head_comp`` must cover at least the first ``max(replication)`` jobs
    (the first job of every replica chain), which pins each stage label's
    first start; chain tails pin the last ends.
    """
    return _assemble(
        head_comp,
        lat_all,
        _chain_busy(lat_all, replication),
        lat_all.shape[0],
        seq_ids,
        seq_done,
        chain_tails,
        names,
        replication,
    )


def _assemble(
    head_comp: np.ndarray,
    head_lat: np.ndarray,
    busy: list[np.ndarray],
    num_jobs: int,
    seq_ids: np.ndarray,
    seq_done: np.ndarray,
    chain_tails: list[np.ndarray],
    names: list[str],
    replication: list[int],
) -> FastSchedule:
    """Assemble a :class:`FastSchedule` from the solved pieces."""
    num_stages = len(names)
    labels = _stage_labels(names, replication, num_jobs)
    stage_busy: dict[str, int] = {}
    stage_first: dict[str, int] = {}
    stage_last: dict[str, int] = {}
    for s, (name, r) in enumerate(zip(names, replication)):
        for c in range(min(r, num_jobs)):
            label = name if r == 1 else f"{name}[{c}]"
            # Chain c's first job is global job c (chains are j mod r).
            stage_first[label] = int(head_comp[c, s] - head_lat[c, s])
            stage_last[label] = int(chain_tails[s][c])
            stage_busy[label] = int(busy[s][c])
    return FastSchedule(
        num_jobs=num_jobs,
        num_stages=num_stages,
        makespan=int(chain_tails[-1].max(initial=0)),
        entry_admit_cycles=int(chain_tails[0].max(initial=0)),
        sequence_completion={
            int(sid): int(done) for sid, done in zip(seq_ids, seq_done)
        },
        stage_label_order=labels,
        stage_busy=stage_busy,
        stage_first_start=stage_first,
        stage_last_end=stage_last,
    )


#: Below this many slots per layer, plain Python integer recurrences beat
#: NumPy's per-call overhead (serving batches are often 2-4 sequences).
_SMALL_PERIOD = 32


def _layered_small(
    accelerator: "Accelerator",
    billed_layer: np.ndarray,
    seq_layer: np.ndarray,
    num_layers: int,
    names: list[str],
) -> FastSchedule:
    """Scalar solver for small, unreplicated layer-periodic workloads.

    Identical integer recurrence as the NumPy path (and the reference), but
    with Python ints: for a 3-sequence batch the whole schedule is a few
    dozen scalar operations, far below NumPy's per-ufunc overhead.  The same
    steady-state extrapolation applies.
    """
    period = int(billed_layer.size)
    num_stages = len(names)
    billed = [int(x) for x in billed_layer]
    seq = [int(x) for x in seq_layer]
    row_of = {length: accelerator.stage_latencies(length) for length in set(billed)}
    # lat_s[s][i]: latency of slot i at stage s.
    lat_s = [[row_of[length][s] for length in billed] for s in range(num_stages)]
    ids_sorted = sorted(set(seq))
    compact = {sid: i for i, sid in enumerate(ids_sorted)}
    slot_to_compact = [compact[s] for s in seq]

    seq_done = [0] * period
    tails = [0] * num_stages
    first_ends: list[int] = []
    prev_state: tuple[int, ...] | None = None
    layer = 0
    while layer < num_layers:
        ready = [seq_done[c] for c in slot_to_compact]
        for s in range(num_stages):
            carry = tails[s]
            row = lat_s[s]
            for i in range(period):
                gate = ready[i]
                carry = (gate if gate > carry else carry) + row[i]
                ready[i] = carry
            tails[s] = carry
            if layer == 0:
                first_ends.append(ready[0])
        for i in range(period):
            seq_done[slot_to_compact[i]] = ready[i]
        if layer >= 1:
            state = (*seq_done, *tails)
            if prev_state is not None:
                step = state[0] - prev_state[0]
                if all(a - b == step for a, b in zip(state, prev_state)):
                    shift = step * (num_layers - 1 - layer)
                    seq_done = [value + shift for value in seq_done]
                    tails = [value + shift for value in tails]
                    break
            prev_state = state
        layer += 1

    stage_busy = {
        name: num_layers * sum(lat_s[s]) for s, name in enumerate(names)
    }
    stage_first = {
        name: first_ends[s] - lat_s[s][0] for s, name in enumerate(names)
    }
    stage_last = {name: tails[s] for s, name in enumerate(names)}
    return FastSchedule(
        num_jobs=period * num_layers,
        num_stages=num_stages,
        makespan=tails[-1],
        entry_admit_cycles=tails[0],
        sequence_completion={
            sid: seq_done[compact[sid]] for sid in ids_sorted
        },
        stage_label_order=list(names),
        stage_busy=stage_busy,
        stage_first_start=stage_first,
        stage_last_end=stage_last,
    )


def simulate_fast_layered(
    accelerator: "Accelerator",
    slot_billed: np.ndarray,
    slot_sequences: np.ndarray,
    num_layers: int,
    pipelined: bool = True,
    buffer_slots: int | None = None,
) -> FastSchedule:
    """Specialized entry for layer-periodic workloads (all batch schedulers).

    ``slot_billed`` / ``slot_sequences`` describe one layer's issue slots;
    every layer repeats the same pattern.  Latency tables, block bounds, and
    chain busy sums are computed on one layer only and the steady-state
    extrapolation engages as soon as the layer-over-layer completion delta
    becomes a uniform shift (the max-plus cycle time).  Falls back to the
    generic array entry when the structure is not layer-periodic (replication
    not dividing the batch, repeated sequences inside a layer).
    """
    if not fast_path_supported(pipelined, buffer_slots):
        raise FastPathUnsupported("finite buffer_slots require the reference engine")
    billed_layer = np.asarray(slot_billed, dtype=np.int64)
    seq_layer = np.asarray(slot_sequences, dtype=np.int64)
    period = int(billed_layer.size)
    if period == 0:
        raise ValueError("simulate_fast_layered needs at least one slot")
    names = [stage.name for stage in accelerator.stages]
    replication = [max(getattr(stage, "replication", 1), 1) for stage in accelerator.stages]
    if (
        pipelined
        and period <= _SMALL_PERIOD
        and all(r == 1 for r in replication)
        and len(set(seq_layer.tolist())) == period
    ):
        return _layered_small(accelerator, billed_layer, seq_layer, num_layers, names)
    seq_ids, seq_idx = np.unique(seq_layer, return_inverse=True)
    layered_ok = (
        pipelined
        and len(seq_ids) == period
        and all(r == 1 or period % r == 0 for r in replication)
    )
    if not layered_ok:
        return simulate_fast_arrays(
            accelerator,
            np.tile(billed_layer, num_layers),
            np.tile(seq_layer, num_layers),
            pipelined=pipelined,
            buffer_slots=buffer_slots,
        )

    lat_layer = stage_latency_table(accelerator, billed_layer)
    seq_done = np.zeros(period, dtype=np.int64)
    chain_tails = [np.zeros(r, dtype=np.int64) for r in replication]
    head_comp: np.ndarray | None = None
    prev_state: np.ndarray | None = None
    layer = 0
    while layer < num_layers:
        ready0 = seq_done[seq_idx]
        comp = _solve_block(lat_layer, ready0, chain_tails, layer * period, replication)
        seq_done[seq_idx] = comp[:, -1]
        if head_comp is None:
            head_comp = comp
        if layer >= 1:
            state = np.concatenate([seq_done, *chain_tails])
            if prev_state is not None:
                delta = state - prev_state
                step = int(delta[0])
                if bool(np.all(delta == step)):
                    # The recurrence reached its periodic steady state: every
                    # remaining layer shifts all completions by `step`.
                    shift = step * (num_layers - 1 - layer)
                    seq_done += shift
                    for tails in chain_tails:
                        tails += shift
                    break
            prev_state = state
        layer += 1

    # Chain assignment repeats every layer (r divides the period), so the
    # whole-run busy sums are one layer's sums times the layer count.
    busy: list[np.ndarray] = []
    for s, r in enumerate(replication):
        if r == 1:
            busy.append(np.array([num_layers * int(lat_layer[:, s].sum())], dtype=np.int64))
        else:
            chains = np.arange(period, dtype=np.int64) % r
            busy.append(
                (
                    num_layers
                    * np.bincount(chains, weights=lat_layer[:, s], minlength=r)
                ).astype(np.int64)
            )
    return _assemble(
        head_comp,
        lat_layer,
        busy,
        period * num_layers,
        seq_ids,
        seq_done,
        chain_tails,
        names,
        replication,
    )
