"""Stage allocation (Algorithm 1) and length-aware dynamic pipeline scheduling."""

from .baselines import MicroBatchScheduler, PaddedScheduler, SequentialScheduler
from .design_space import DesignPoint, best_design_point, explore_design_space
from .length_aware import (
    LengthAwareScheduler,
    build_layer_ordered_jobs,
    sort_batch_by_length,
)
from .pipeline import PipelineJob, ScheduleResult, simulate_coarse_pipeline
from .serving import ServingReport, simulate_serving
from .stage_allocation import (
    StageAssignment,
    StagePlan,
    allocate_stages,
    plan_to_accelerator,
)
from .timeline import StageOccupancy, Timeline, TimelineEvent

__all__ = [
    "DesignPoint",
    "LengthAwareScheduler",
    "MicroBatchScheduler",
    "PaddedScheduler",
    "PipelineJob",
    "ScheduleResult",
    "SequentialScheduler",
    "ServingReport",
    "StageAssignment",
    "StageOccupancy",
    "StagePlan",
    "Timeline",
    "TimelineEvent",
    "allocate_stages",
    "best_design_point",
    "build_layer_ordered_jobs",
    "explore_design_space",
    "plan_to_accelerator",
    "simulate_coarse_pipeline",
    "simulate_serving",
    "sort_batch_by_length",
]
