"""Stage allocation (Algorithm 1) and length-aware dynamic pipeline scheduling."""

from .baselines import MicroBatchScheduler, PaddedScheduler, SequentialScheduler
from .design_space import DesignPoint, best_design_point, explore_design_space
from .length_aware import (
    LengthAwareScheduler,
    build_layer_ordered_jobs,
    sort_batch_by_length,
)
from .pipeline import PipelineJob, ScheduleResult, simulate_coarse_pipeline
from .stage_allocation import (
    StageAssignment,
    StagePlan,
    allocate_stages,
    plan_to_accelerator,
)
from .timeline import StageOccupancy, Timeline, TimelineEvent

# ``ServingReport`` / ``simulate_serving`` moved to :mod:`repro.serving`
# (closed-loop mode of the online engine).  They are re-exported lazily to
# avoid a circular import: ``repro.serving`` builds on the scheduler modules
# of this package.
_SERVING_EXPORTS = ("ServingReport", "simulate_serving")


def __getattr__(name: str):
    if name in _SERVING_EXPORTS:
        from ..serving.closed_loop import ServingReport, simulate_serving

        return {"ServingReport": ServingReport, "simulate_serving": simulate_serving}[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DesignPoint",
    "LengthAwareScheduler",
    "MicroBatchScheduler",
    "PaddedScheduler",
    "PipelineJob",
    "ScheduleResult",
    "SequentialScheduler",
    "ServingReport",
    "StageAssignment",
    "StageOccupancy",
    "StagePlan",
    "Timeline",
    "TimelineEvent",
    "allocate_stages",
    "best_design_point",
    "build_layer_ordered_jobs",
    "explore_design_space",
    "plan_to_accelerator",
    "simulate_coarse_pipeline",
    "simulate_serving",
    "sort_batch_by_length",
]
