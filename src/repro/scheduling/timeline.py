"""Pipeline execution timeline (the data behind Fig. 5).

The pipeline simulators emit :class:`TimelineEvent` records -- one per
(sequence, encoder layer, stage) execution -- into a :class:`Timeline`.  The
timeline answers the questions the paper's Fig. 5 visualizes: the makespan of
the batch, the busy/idle (bubble) time of each stage, per-stage utilization,
and the latency "saved" relative to a non-overlapped schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TimelineEvent", "StageOccupancy", "Timeline"]


@dataclass(frozen=True)
class TimelineEvent:
    """One stage execution: a sequence's pass through one stage for one layer."""

    sequence_id: int
    layer: int
    stage: str
    start: int
    end: int
    length: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("event end must be >= start")

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class StageOccupancy:
    """Busy/idle accounting of one pipeline stage over the whole batch."""

    stage: str
    busy_cycles: int = 0
    first_start: int | None = None
    last_end: int = 0
    num_events: int = 0

    @property
    def active_span(self) -> int:
        """Cycles between the stage's first start and last end."""
        if self.first_start is None:
            return 0
        return self.last_end - self.first_start

    @property
    def bubble_cycles(self) -> int:
        """Idle cycles inside the stage's active span (the pipeline bubbles)."""
        return max(self.active_span - self.busy_cycles, 0)

    @property
    def utilization(self) -> float:
        """Busy fraction of the active span (1.0 = no bubbles)."""
        if self.active_span == 0:
            return 0.0
        return self.busy_cycles / self.active_span


class Timeline:
    """An append-only collection of pipeline events with derived statistics."""

    def __init__(self) -> None:
        self._events: list[TimelineEvent] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add(self, event: TimelineEvent) -> None:
        """Record one stage execution."""
        self._events.append(event)

    def extend(self, events: list[TimelineEvent]) -> None:
        for event in events:
            self.add(event)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def events(self) -> list[TimelineEvent]:
        """All events in insertion order."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def makespan(self) -> int:
        """Completion time of the last event (batch latency in cycles)."""
        if not self._events:
            return 0
        return max(event.end for event in self._events)

    def events_for_stage(self, stage: str) -> list[TimelineEvent]:
        """Events of one stage, sorted by start time."""
        return sorted(
            (e for e in self._events if e.stage == stage), key=lambda e: (e.start, e.end)
        )

    def events_for_sequence(self, sequence_id: int) -> list[TimelineEvent]:
        """Events of one sequence, sorted by start time."""
        return sorted(
            (e for e in self._events if e.sequence_id == sequence_id),
            key=lambda e: (e.start, e.end),
        )

    def stage_names(self) -> list[str]:
        """Stage labels in order of first appearance."""
        seen: list[str] = []
        for event in self._events:
            if event.stage not in seen:
                seen.append(event.stage)
        return seen

    def stage_occupancy(self) -> dict[str, StageOccupancy]:
        """Busy/idle accounting per stage."""
        occupancy: dict[str, StageOccupancy] = {}
        for event in self._events:
            occ = occupancy.setdefault(event.stage, StageOccupancy(stage=event.stage))
            occ.busy_cycles += event.duration
            occ.num_events += 1
            occ.first_start = (
                event.start if occ.first_start is None else min(occ.first_start, event.start)
            )
            occ.last_end = max(occ.last_end, event.end)
        return occupancy

    def total_busy_cycles(self) -> int:
        """Sum of all stage busy times (work actually executed)."""
        return sum(event.duration for event in self._events)

    def total_bubble_cycles(self) -> int:
        """Sum of idle cycles inside every stage's active span."""
        return sum(occ.bubble_cycles for occ in self.stage_occupancy().values())

    def average_utilization(self) -> float:
        """Mean per-stage utilization (the paper reports ~100% for the proposed design)."""
        occupancy = self.stage_occupancy()
        if not occupancy:
            return 0.0
        return sum(occ.utilization for occ in occupancy.values()) / len(occupancy)

    def sequence_latency(self, sequence_id: int) -> int:
        """Cycles between a sequence's first start and last end."""
        events = self.events_for_sequence(sequence_id)
        if not events:
            return 0
        return max(e.end for e in events) - min(e.start for e in events)

    def verify_no_overlap_per_stage(self) -> bool:
        """Sanity check: a stage never runs two events at once (per replica)."""
        for stage in self.stage_names():
            events = self.events_for_stage(stage)
            for prev, curr in zip(events, events[1:]):
                if curr.start < prev.end:
                    return False
        return True

    def as_rows(self) -> list[dict]:
        """Serialize events into plain dictionaries (for reports / examples)."""
        return [
            {
                "sequence": e.sequence_id,
                "layer": e.layer,
                "stage": e.stage,
                "start": e.start,
                "end": e.end,
                "length": e.length,
            }
            for e in sorted(self._events, key=lambda e: (e.start, e.stage))
        ]
