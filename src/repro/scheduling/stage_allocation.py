"""Encoder coarse-grained stage allocation (Algorithm 1 of the paper).

The algorithm takes the encoder operator graph ``G = (V, E)``, the operator
weights ``W(V, s_avg)`` and the critical-path priorities ``P(V, s_avg)``
(Eq. 1) and partitions the operators into coarse-grained pipeline stages:

1. visit the operators in decreasing priority order (i.e. along the critical
   path from the encoder input toward its output);
2. tentatively add the operator to the current stage and rescale the
   parallelism of the operators already in the stage,
   ``N'(v_j) = N(v_j) * ceil(W(v_j)/W(v_i))``, so that every operator in the
   stage finishes in roughly the same time;
3. if the rescaled design still satisfies the device resource constraints the
   operator joins the current stage; otherwise a new stage is opened.

The output is an ordered list of stage assignments (operator subsets plus
their parallelism), which :func:`plan_to_accelerator` converts into the
hardware model of :mod:`repro.hardware`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import config as global_config
from ..hardware.buffers import BufferSizing
from ..hardware.cycle_model import OperatorCycleModel
from ..hardware.hbm import HbmModel
from ..hardware.resources import FpgaResources, U280_SLR0, resources_for_operator
from ..hardware.stages import StageHardware, StageOperator
from ..hardware.accelerator import Accelerator
from ..operators.graph import OperatorGraph
from ..transformer.configs import ModelConfig

__all__ = ["StageAssignment", "StagePlan", "allocate_stages", "plan_to_accelerator"]


@dataclass
class StageAssignment:
    """Operators assigned to one coarse-grained stage with their parallelism."""

    index: int
    operator_names: list[str] = field(default_factory=list)
    parallelism: dict[str, int] = field(default_factory=dict)

    def resources(self, graph: OperatorGraph) -> FpgaResources:
        """Total resources of this stage at its current parallelism."""
        total = FpgaResources()
        for name in self.operator_names:
            op = graph.operator(name)
            total = total + resources_for_operator(op.kind, self.parallelism[name])
        return total

    def work(self, graph: OperatorGraph, seq: int) -> int:
        """Arithmetic work of the stage at sequence length ``seq``."""
        return sum(graph.operator(name).weight(seq) for name in self.operator_names)


@dataclass
class StagePlan:
    """Result of Algorithm 1: an ordered list of stage assignments."""

    graph: OperatorGraph
    stages: list[StageAssignment]
    avg_seq: int
    capacity: FpgaResources

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def total_resources(self) -> FpgaResources:
        """Device resources consumed by the whole plan."""
        total = FpgaResources()
        for stage in self.stages:
            total = total + stage.resources(self.graph)
        return total

    def fits_capacity(self) -> bool:
        """True when the plan fits the device."""
        return self.total_resources().fits_within(self.capacity)

    def stage_of(self, operator_name: str) -> int:
        """Index of the stage an operator was assigned to."""
        for stage in self.stages:
            if operator_name in stage.operator_names:
                return stage.index
        raise KeyError(f"operator '{operator_name}' is not in the plan")

    def stage_work(self, seq: int) -> list[int]:
        """Per-stage arithmetic work at sequence length ``seq``."""
        return [stage.work(self.graph, seq) for stage in self.stages]


def _plan_resources(
    graph: OperatorGraph,
    stages: list[StageAssignment],
    trial_parallelism: dict[str, int] | None = None,
) -> FpgaResources:
    """Resources of all stages, optionally overriding some parallelisms."""
    total = FpgaResources()
    for stage in stages:
        for name in stage.operator_names:
            parallelism = stage.parallelism[name]
            if trial_parallelism and name in trial_parallelism:
                parallelism = trial_parallelism[name]
            op = graph.operator(name)
            total = total + resources_for_operator(op.kind, parallelism)
    return total


def allocate_stages(
    graph: OperatorGraph,
    avg_seq: int,
    capacity: FpgaResources = U280_SLR0,
    dsp_budget_fraction: float = 0.85,
    stage_budget_fraction: float = 1.0 / 3.0,
    max_parallelism: int = 1024,
) -> StagePlan:
    """Run Algorithm 1 over ``graph`` at the average sequence length.

    The algorithm visits the operators in decreasing priority ``P(v, s_avg)``
    and keeps appending them to the current stage.  Each operator receives a
    parallelism proportional to its weight, ``N(v) = ceil(W(v) / quantum)``
    with a device-wide work quantum -- this realises the paper's rescaling
    step ``N'(v_j) = N(v_j) * ceil(W(v_j)/W(v_i))`` (every operator in a stage
    finishes in roughly the same time) with a reference that is insensitive to
    arrival order.  When the stage's accumulated hardware exceeds its resource
    share a new stage is opened.  A final global scaling step ("we further
    adjust the operator parallelism ... to obtain the optimal setting")
    stretches or shrinks the whole design onto the device budget.

    Parameters
    ----------
    graph:
        Encoder operator graph (dense or sparse variant).
    avg_seq:
        ``s_avg`` -- the dataset's average sequence length, at which the
        weights and priorities are evaluated.
    capacity:
        Device resources available to the datapaths.
    dsp_budget_fraction:
        Fraction of the device handed to the compute datapaths.
    stage_budget_fraction:
        Fraction of the compute budget a single coarse stage may occupy
        before a new stage is opened (1/3 reproduces the paper's three-stage
        partition for the encoder graphs).
    max_parallelism:
        Upper bound on any single operator's parallelism (keeps the rescaling
        step from exploding when one operator dominates another by orders of
        magnitude).
    """
    if len(graph) == 0:
        raise ValueError("cannot allocate stages for an empty graph")
    budget = FpgaResources(
        dsp=int(capacity.dsp * dsp_budget_fraction),
        bram=int(capacity.bram * dsp_budget_fraction),
        lut=int(capacity.lut * dsp_budget_fraction),
        ff=int(capacity.ff * dsp_budget_fraction),
    )
    stage_budget = FpgaResources(
        dsp=max(int(budget.dsp * stage_budget_fraction), 1),
        bram=max(int(budget.bram * stage_budget_fraction), 1),
        lut=max(int(budget.lut * stage_budget_fraction), 1),
        ff=max(int(budget.ff * stage_budget_fraction), 1),
    )

    weights = graph.weights(avg_seq)
    priorities = graph.priorities(avg_seq)
    # Decreasing order of priority = topological order along the critical path.
    ordered = sorted(graph.operators, key=lambda op: priorities[op.name], reverse=True)

    # Work quantum: the amount of work one hardware lane handles per stage
    # interval when the whole DSP budget is spread work-proportionally over
    # the graph.  N(v) = ceil(W(v) / quantum) then gives every operator the
    # lane count that makes its latency (approximately) one interval, which is
    # the balanced-parallelism condition the paper's rescaling step encodes.
    total_work = max(sum(max(w, 1) for w in weights.values()), 1)
    quantum = max(total_work // max(budget.dsp, 1), 1)

    def lanes_for(name: str) -> int:
        # Fabric (non-DSP) operators are cheap per lane, so they are given a
        # finer work quantum; this keeps the element-wise/LayerNorm/Top-k
        # datapaths off the stage critical path, mirroring how the paper hides
        # them behind the MM units with loop fusion.
        op_quantum = quantum if graph.operator(name).kind == "matmul" else max(quantum // 8, 1)
        return int(min(max(-(-max(weights[name], 1) // op_quantum), 1), max_parallelism))

    def stage_resources(names: list[str]) -> FpgaResources:
        total = FpgaResources()
        for name in names:
            total = total + resources_for_operator(graph.operator(name).kind, lanes_for(name))
        return total

    stages: list[StageAssignment] = []
    current = StageAssignment(index=0)
    stages.append(current)

    for op in ordered:
        if not current.operator_names:
            # First operator of a fresh stage is always accepted.
            current.operator_names.append(op.name)
            current.parallelism[op.name] = lanes_for(op.name)
            continue

        trial_names = current.operator_names + [op.name]
        if stage_resources(trial_names).fits_within(stage_budget):
            current.operator_names.append(op.name)
            current.parallelism[op.name] = lanes_for(op.name)
        else:
            current = StageAssignment(index=len(stages))
            current.operator_names.append(op.name)
            current.parallelism[op.name] = lanes_for(op.name)
            stages.append(current)

    plan = StagePlan(graph=graph, stages=stages, avg_seq=avg_seq, capacity=capacity)
    _scale_plan_to_budget(plan, budget, max_parallelism)
    return plan


def _scale_plan_to_budget(plan: StagePlan, budget: FpgaResources, max_parallelism: int) -> None:
    """Scale every operator's parallelism onto the device budget.

    This is the paper's follow-up step: "we further adjust the operator
    parallelism N(v_i, s_i) ... to obtain the optimal setting".  All
    parallelisms are multiplied by a common factor -- up when the device has
    head-room, down when the relative allocation overflows it -- found by a
    simple bisection, preserving the intra-stage balance picked by the main
    loop.
    """

    def fits(factor: float) -> bool:
        total = FpgaResources()
        for stage in plan.stages:
            for name in stage.operator_names:
                op = plan.graph.operator(name)
                scaled = max(1, min(int(stage.parallelism[name] * factor), max_parallelism))
                total = total + resources_for_operator(op.kind, scaled)
        return total.fits_within(budget)

    low, high = 0.0, 1.0
    if fits(1.0):
        # Grow until the budget is exhausted.
        while fits(high * 2) and high < 4096:
            high *= 2
        low = high / 2 if high > 1.0 else 1.0
    else:
        # Shrink until the design fits.
        while not fits(high) and high > 1e-6:
            high /= 2
        low, high = high, high * 2

    # Bisection refinement between low (fits) and high (may not fit).
    for _ in range(24):
        mid = (low + high) / 2
        if fits(mid):
            low = mid
        else:
            high = mid

    factor = low if low > 0 else 1.0
    for stage in plan.stages:
        for name in stage.operator_names:
            stage.parallelism[name] = max(
                1, min(int(stage.parallelism[name] * factor), max_parallelism)
            )


def plan_to_accelerator(
    plan: StagePlan,
    model_config: ModelConfig,
    max_seq: int = 512,
    clock_hz: float = global_config.FPGA_CLOCK_HZ,
    hbm: HbmModel | None = None,
    top_k: int | None = None,
    name: str | None = None,
) -> Accelerator:
    """Materialize a :class:`StagePlan` into the hardware accelerator model."""
    hbm = hbm or HbmModel(clock_hz=clock_hz)
    cycle_model = OperatorCycleModel(hbm=hbm)
    stage_hw: list[StageHardware] = []
    for stage in plan.stages:
        if not stage.operator_names:
            continue
        operators = [
            StageOperator(
                operator=plan.graph.operator(op_name),
                parallelism=max(stage.parallelism[op_name], 1),
            )
            for op_name in stage.operator_names
        ]
        buffer = BufferSizing(
            name=f"stage{stage.index}-out",
            bytes_per_slot=max_seq * model_config.hidden_dim,
        )
        stage_hw.append(
            StageHardware(
                name=f"Stage{stage.index + 1}",
                operators=operators,
                cycle_model=cycle_model,
                intra_pipelined=True,
                output_buffer=buffer,
            )
        )
    return Accelerator(
        name=name or f"algorithm1-{model_config.name}",
        model_config=model_config,
        stages=stage_hw,
        clock_hz=clock_hz,
        capacity=plan.capacity,
        top_k=top_k,
    )
