"""Baseline sequence-length standardization schedulers (Section 2 / Fig. 7).

Three baselines bracket the proposed length-aware scheduler:

* :class:`PaddedScheduler` -- TensorRT-style padding: every sequence in the
  batch is billed at the batch's maximum length (or a fixed dataset maximum),
  which is what the CPU / GPU baselines and the "FPGA baseline" of Fig. 7 do.
* :class:`MicroBatchScheduler` -- TurboTransformers-style micro-batching: the
  sorted batch is split into micro-batches, padding only up to the
  micro-batch maximum, but with a synchronization barrier between
  micro-batches that re-introduces pipeline bubbles on the FPGA.
* :class:`SequentialScheduler` -- no coarse-grained pipelining at all: a
  sequence's three stages finish before the next sequence starts.  The gap
  between this schedule and the length-aware one is the "saved" latency
  annotated in Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.accelerator import Accelerator
from .length_aware import build_layer_ordered_jobs, sort_batch_by_length
from .pipeline import ScheduleResult, simulate_coarse_pipeline, simulate_layered

__all__ = ["PaddedScheduler", "MicroBatchScheduler", "SequentialScheduler"]


@dataclass
class PaddedScheduler:
    """Pad every sequence to the batch maximum (or a fixed target length)."""

    pad_to: int | None = None
    pipelined: bool = True
    buffer_slots: int | None = None
    name: str = "padded"

    #: Every slot is billed at the same padded length, so per-slot schedules
    #: are independent of which request sits where: the shared schedule cache
    #: may canonicalize the batch and map offsets back by position.
    cache_canonicalization = "uniform"

    def schedule(self, accelerator: Accelerator, lengths: list[int]) -> ScheduleResult:
        """Schedule the batch with every sequence billed at the padded length."""
        lengths = [int(x) for x in lengths]
        if not lengths:
            raise ValueError("cannot schedule an empty batch")
        pad_target = self.pad_to if self.pad_to is not None else max(lengths)
        if pad_target < max(lengths):
            raise ValueError("pad_to is smaller than the longest sequence in the batch")
        billed = [pad_target] * len(lengths)
        order = list(range(len(lengths)))  # padding makes the order irrelevant
        num_layers = accelerator.model_config.num_layers
        timeline = simulate_layered(
            accelerator,
            billed,
            order,
            num_layers,
            lambda: build_layer_ordered_jobs(lengths, order, num_layers, billed_lengths=billed),
            pipelined=self.pipelined,
            buffer_slots=self.buffer_slots,
        )
        return ScheduleResult(
            scheduler=self.name,
            accelerator_name=accelerator.name,
            timeline=timeline,
            lengths=lengths,
            billed_lengths=billed,
            num_layers=num_layers,
            clock_hz=accelerator.clock_hz,
        )


@dataclass
class MicroBatchScheduler:
    """Split the sorted batch into micro-batches, padding within each.

    A barrier separates consecutive micro-batches (the GPU serving system
    launches them as separate kernels), which drains the coarse pipeline and
    creates the inter-micro-batch bubbles the paper criticizes.
    """

    micro_batch_size: int = 4
    buffer_slots: int | None = None
    name: str = "micro-batch"

    #: Micro-batch grouping, billing, and barriers all derive from the
    #: descending-sorted batch, so the cache may canonicalize by that order.
    cache_canonicalization = "sort-desc"

    def __post_init__(self) -> None:
        if self.micro_batch_size < 1:
            raise ValueError("micro_batch_size must be >= 1")

    def schedule(self, accelerator: Accelerator, lengths: list[int]) -> ScheduleResult:
        """Schedule the batch as padded micro-batches with barriers between them."""
        lengths = [int(x) for x in lengths]
        if not lengths:
            raise ValueError("cannot schedule an empty batch")
        order = sort_batch_by_length(lengths, descending=True)
        num_layers = accelerator.model_config.num_layers

        # Pad each sequence to the maximum of its micro-batch.
        billed = list(lengths)
        micro_batch_of: dict[int, int] = {}
        for start in range(0, len(order), self.micro_batch_size):
            group = order[start : start + self.micro_batch_size]
            group_max = max(lengths[i] for i in group)
            for i in group:
                billed[i] = group_max
                micro_batch_of[i] = start // self.micro_batch_size

        jobs = build_layer_ordered_jobs(lengths, order, num_layers, billed_lengths=billed)
        # A job sitting at a micro-batch boundary must wait for the pipeline to drain.
        barriers = {
            j
            for j, job in enumerate(jobs)
            if j > 0 and micro_batch_of[job.sequence_id] != micro_batch_of[jobs[j - 1].sequence_id]
        }
        timeline = simulate_coarse_pipeline(
            accelerator, jobs, pipelined=True, buffer_slots=self.buffer_slots, barriers=barriers
        )
        return ScheduleResult(
            scheduler=self.name,
            accelerator_name=accelerator.name,
            timeline=timeline,
            lengths=lengths,
            billed_lengths=billed,
            num_layers=num_layers,
            clock_hz=accelerator.clock_hz,
        )


@dataclass
class SequentialScheduler:
    """No coarse-grained pipelining: one sequence-layer finishes before the next starts."""

    padded: bool = False
    name: str = "sequential"

    #: Issues the descending-sorted batch back to back; see MicroBatchScheduler.
    cache_canonicalization = "sort-desc"

    def schedule(self, accelerator: Accelerator, lengths: list[int]) -> ScheduleResult:
        """Schedule the batch with stages running strictly back to back."""
        lengths = [int(x) for x in lengths]
        if not lengths:
            raise ValueError("cannot schedule an empty batch")
        billed = [max(lengths)] * len(lengths) if self.padded else list(lengths)
        order = sort_batch_by_length(lengths, descending=True)
        num_layers = accelerator.model_config.num_layers
        timeline = simulate_layered(
            accelerator,
            [billed[i] for i in order],
            order,
            num_layers,
            lambda: build_layer_ordered_jobs(lengths, order, num_layers, billed_lengths=billed),
            pipelined=False,
            buffer_slots=None,
        )
        return ScheduleResult(
            scheduler=self.name + ("-padded" if self.padded else ""),
            accelerator_name=accelerator.name,
            timeline=timeline,
            lengths=lengths,
            billed_lengths=billed,
            num_layers=num_layers,
            clock_hz=accelerator.clock_hz,
        )
