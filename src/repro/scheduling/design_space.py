"""Design-space exploration over Top-k and pipeline replication.

Section 5.2 of the paper: "We exploit the design space to maximize the
hardware throughput and CTC ratio for the hardware design" -- concretely, the
operator parallelism inside each stage (handled by the allocation code) and
the pipeline replication factor ``R(G_k, s)`` from Algorithm 1.  This module
enumerates candidate design points, evaluates each one by simulating the
length-aware pipeline on a representative batch, and returns them ranked by
throughput so the best point can be picked exactly as the authors describe.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import config as global_config
from ..hardware.accelerator import Accelerator, build_sparse_accelerator
from ..transformer.configs import DatasetConfig, ModelConfig
from .length_aware import LengthAwareScheduler
from .pipeline import ScheduleResult

__all__ = ["DesignPoint", "explore_design_space", "best_design_point"]


@dataclass
class DesignPoint:
    """One evaluated configuration of the design space."""

    top_k: int
    replication: int
    accelerator: Accelerator
    schedule: ScheduleResult

    @property
    def throughput_sequences_per_second(self) -> float:
        return self.schedule.throughput_sequences_per_second

    @property
    def makespan_seconds(self) -> float:
        return self.schedule.makespan_seconds

    @property
    def average_utilization(self) -> float:
        return self.schedule.average_utilization

    def as_row(self) -> dict:
        """Summary row for reports."""
        return {
            "top_k": self.top_k,
            "replication": self.replication,
            "batch_latency_ms": round(self.makespan_seconds * 1e3, 3),
            "throughput_seq_per_s": round(self.throughput_sequences_per_second, 1),
            "avg_stage_utilization": round(self.average_utilization, 3),
            "dsp_used": self.accelerator.resources().dsp,
        }


def explore_design_space(
    model_config: ModelConfig,
    dataset: DatasetConfig,
    lengths: list[int],
    top_k_candidates: tuple[int, ...] = (global_config.DEFAULT_TOP_K,),
    replication_candidates: tuple[int, ...] = (1, 2, 4),
    scheduler: LengthAwareScheduler | None = None,
) -> list[DesignPoint]:
    """Evaluate every (top_k, replication) candidate on the given batch.

    Returns the design points sorted by decreasing throughput.  Candidates
    whose replicated design does not fit the device are skipped.
    """
    if not lengths:
        raise ValueError("a non-empty batch of sequence lengths is required")
    scheduler = scheduler or LengthAwareScheduler()
    points: list[DesignPoint] = []
    for top_k in top_k_candidates:
        for replication in replication_candidates:
            accelerator = build_sparse_accelerator(
                model_config,
                top_k=top_k,
                avg_seq=dataset.avg_length,
                max_seq=dataset.max_length,
                replication=replication,
            )
            if not accelerator.fits_capacity():
                continue
            schedule = scheduler.schedule(accelerator, lengths)
            points.append(
                DesignPoint(
                    top_k=top_k,
                    replication=replication,
                    accelerator=accelerator,
                    schedule=schedule,
                )
            )
    if not points:
        raise ValueError("no feasible design point for the given candidates")
    points.sort(key=lambda p: p.throughput_sequences_per_second, reverse=True)
    return points


def best_design_point(
    model_config: ModelConfig,
    dataset: DatasetConfig,
    lengths: list[int],
    **kwargs,
) -> DesignPoint:
    """Convenience wrapper returning only the highest-throughput design point."""
    return explore_design_space(model_config, dataset, lengths, **kwargs)[0]
