"""Batch-serving simulation over a whole synthetic dataset.

The paper evaluates throughput on batches of 16 drawn from each dataset; a
deployed serving system processes a long stream of such batches.  This module
simulates that stream on any accelerator + scheduler combination: the request
lengths are drawn from the dataset's Table 1 distribution, bucketed into
batches (optionally globally sorted, the common serving-side trick), each
batch is scheduled on the FPGA model, and the aggregate throughput plus the
per-sequence latency distribution are reported.  It is the piece a downstream
user needs to answer "what does this accelerator give me on my traffic?".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import config as global_config
from ..datasets.batching import make_batches, sorted_batches
from ..datasets.length_distributions import sample_lengths
from ..hardware.accelerator import Accelerator
from ..transformer.configs import DatasetConfig
from .length_aware import LengthAwareScheduler
from .pipeline import ScheduleResult

__all__ = ["ServingReport", "simulate_serving"]


@dataclass
class ServingReport:
    """Aggregate results of serving a request stream."""

    dataset: str
    accelerator: str
    scheduler: str
    batch_size: int
    num_requests: int
    batch_results: list[ScheduleResult] = field(default_factory=list)
    sequence_latencies_seconds: list[float] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Wall-clock time to drain the whole request stream (batches run back to back)."""
        return float(sum(result.makespan_seconds for result in self.batch_results))

    @property
    def throughput_sequences_per_second(self) -> float:
        """Aggregate serving throughput."""
        if self.total_seconds == 0:
            return 0.0
        return self.num_requests / self.total_seconds

    @property
    def average_utilization(self) -> float:
        """Mean stage utilization across batches."""
        if not self.batch_results:
            return 0.0
        return float(np.mean([result.average_utilization for result in self.batch_results]))

    def latency_percentile(self, percentile: float) -> float:
        """Per-sequence latency percentile (seconds), including queueing inside the batch."""
        if not self.sequence_latencies_seconds:
            raise ValueError("no sequences were served")
        return float(np.percentile(self.sequence_latencies_seconds, percentile))

    def as_row(self) -> dict:
        """Summary row for reports."""
        return {
            "dataset": self.dataset,
            "scheduler": self.scheduler,
            "batch_size": self.batch_size,
            "requests": self.num_requests,
            "throughput_seq_per_s": round(self.throughput_sequences_per_second, 1),
            "p50_latency_ms": round(self.latency_percentile(50) * 1e3, 2),
            "p99_latency_ms": round(self.latency_percentile(99) * 1e3, 2),
            "avg_stage_utilization": round(self.average_utilization, 3),
        }


def simulate_serving(
    accelerator: Accelerator,
    dataset: DatasetConfig,
    num_requests: int = 256,
    batch_size: int = global_config.DEFAULT_BATCH_SIZE,
    scheduler=None,
    sort_globally: bool = True,
    seed: int = global_config.DEFAULT_SEED,
) -> ServingReport:
    """Serve ``num_requests`` synthetic requests drawn from ``dataset``.

    Parameters
    ----------
    accelerator:
        The FPGA design to serve on.
    dataset:
        Which Table 1 length distribution the requests follow.
    num_requests:
        Total number of sequences in the stream.
    batch_size:
        Sequences per hardware batch (the paper uses 16).
    scheduler:
        Any scheduler with a ``schedule(accelerator, lengths)`` method;
        defaults to the length-aware scheduler.
    sort_globally:
        Bucket similar-length requests into the same batch before scheduling
        (standard serving practice; the intra-batch sort is the scheduler's
        job either way).
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    scheduler = scheduler or LengthAwareScheduler()
    lengths = [int(x) for x in sample_lengths(dataset, num_requests, seed=seed)]
    batches = (
        sorted_batches(lengths, batch_size=batch_size)
        if sort_globally
        else make_batches(lengths, batch_size=batch_size)
    )

    report = ServingReport(
        dataset=dataset.name,
        accelerator=accelerator.name,
        scheduler=getattr(scheduler, "name", type(scheduler).__name__),
        batch_size=batch_size,
        num_requests=num_requests,
    )
    for batch in batches:
        result = scheduler.schedule(accelerator, batch)
        report.batch_results.append(result)
        for index in range(len(batch)):
            latency_cycles = result.timeline.sequence_latency(index)
            report.sequence_latencies_seconds.append(latency_cycles / accelerator.clock_hz)
    return report
