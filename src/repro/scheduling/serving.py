"""Deprecated location of the batch-serving simulation.

The closed-loop stream drain that used to live here is now a thin special
case of the event-driven online serving engine in :mod:`repro.serving`:
:mod:`repro.serving.closed_loop` holds the implementation, and
:mod:`repro.serving.engine` is the general open-loop simulator (arrival
processes, batch-formation policies incl. the SLO-aware
:class:`~repro.serving.slo.DeadlineBatcher`, multi-device routing over
:mod:`repro.devices` fleets, continuous batching, admission control, and
deadline-attainment reporting).

This module remains as a re-export shim so existing imports keep working::

    from repro.scheduling.serving import ServingReport, simulate_serving

New code should import from :mod:`repro.serving` instead.
"""

from __future__ import annotations

import warnings

from ..serving.closed_loop import ServingReport, simulate_serving

__all__ = ["ServingReport", "simulate_serving"]

warnings.warn(
    "repro.scheduling.serving is deprecated; import ServingReport and "
    "simulate_serving from repro.serving instead",
    DeprecationWarning,
    stacklevel=2,
)
