"""Length-aware coarse-grained dynamic pipeline scheduling (Section 4.2).

The proposed scheduler sorts the batch by decreasing sequence length, bills
every stage at the sequence's *actual* length (no padding), and issues the
(sequence, layer) jobs through the coarse pipeline back to back.  Because
every operator of the proposed design is O(n) in the sequence length, the
sorted order lets consecutive jobs' stage times shrink monotonically, so the
downstream stages never starve and the pipeline runs without bubbles -- the
behaviour Fig. 5 illustrates and the utilization numbers of Section 4.2
claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.accelerator import Accelerator
from .pipeline import PipelineJob, ScheduleResult, simulate_layered

__all__ = ["LengthAwareScheduler", "sort_batch_by_length", "build_layer_ordered_jobs"]


def sort_batch_by_length(lengths: list[int] | np.ndarray, descending: bool = True) -> list[int]:
    """Return the batch order (indices) sorted by sequence length.

    The paper feeds sequences in decreasing order of length; ties keep their
    original order so results are deterministic.
    """
    lengths = list(int(x) for x in lengths)
    order = sorted(range(len(lengths)), key=lambda i: (-lengths[i], i) if descending else (lengths[i], i))
    return order


def build_layer_ordered_jobs(
    lengths: list[int],
    order: list[int],
    num_layers: int,
    billed_lengths: list[int] | None = None,
) -> list[PipelineJob]:
    """Build the job list in the paper's issue order.

    The batch is processed layer by layer ("the batch input is processed by
    the layer order"): every sequence passes through encoder layer 1, then the
    batch re-enters the pipeline for layer 2, and so on.  Within a layer the
    sequences follow ``order``.
    """
    billed = billed_lengths or lengths
    jobs: list[PipelineJob] = []
    for layer in range(num_layers):
        for idx in order:
            jobs.append(
                PipelineJob(
                    sequence_id=idx,
                    layer=layer,
                    actual_length=lengths[idx],
                    billed_length=billed[idx],
                )
            )
    return jobs


@dataclass
class LengthAwareScheduler:
    """The proposed scheduler: sorted batch, actual lengths, full pipelining.

    Attributes
    ----------
    buffer_slots:
        Depth of the inter-stage buffers.  ``None`` (default) models the
        paper's HBM-backed inter-stage buffering ("the Top-k results are
        stored back to HBM for inter-stage buffering"), which is deep enough
        never to throttle a stage; an integer (e.g. 2) instead models on-chip
        ping-pong buffers and is useful as an ablation.
    sort_descending:
        Sort order of the batch; the paper uses decreasing length.
    """

    buffer_slots: int | None = None
    sort_descending: bool = True
    name: str = "length-aware"

    @property
    def cache_canonicalization(self) -> str:
        """Batch canonicalization the shared schedule cache may apply.

        The scheduler re-sorts the batch anyway, so permutations of one
        length multiset produce identical schedules (slot-for-slot) and may
        share one cache entry.
        """
        return "sort-desc" if self.sort_descending else "sort-asc"

    def schedule(self, accelerator: Accelerator, lengths: list[int]) -> ScheduleResult:
        """Schedule a batch of sequences with the given actual lengths."""
        lengths = [int(x) for x in lengths]
        if not lengths:
            raise ValueError("cannot schedule an empty batch")
        if min(lengths) < 1:
            raise ValueError("sequence lengths must be >= 1")
        order = sort_batch_by_length(lengths, descending=self.sort_descending)
        num_layers = accelerator.model_config.num_layers
        timeline = simulate_layered(
            accelerator,
            [lengths[i] for i in order],
            order,
            num_layers,
            lambda: build_layer_ordered_jobs(lengths, order, num_layers),
            pipelined=True,
            buffer_slots=self.buffer_slots,
        )
        return ScheduleResult(
            scheduler=self.name,
            accelerator_name=accelerator.name,
            timeline=timeline,
            lengths=lengths,
            billed_lengths=lengths,
            num_layers=num_layers,
            clock_hz=accelerator.clock_hz,
        )
