"""Drive the unified experiment API programmatically.

Every paper experiment is registered in the central registry with a typed,
frozen config dataclass; the same experiment runs three equivalent ways --
through the registry with defaults, with a config object (or dict), or from
a JSON config file -- and every result exposes ``to_dict()`` for downstream
tooling.  Serving components (arrival processes, batch policies, routers)
plug into the same registry under their own kinds.

Run with::

    PYTHONPATH=src python examples/experiment_api.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.evaluation import Fig1Config
from repro.experiments import list_experiments, run_experiment, run_report
from repro.registry import available, create


def main() -> None:
    print("Registered experiments:")
    for spec in list_experiments():
        print(f"  {spec.name:14s} {spec.title}")

    # 1. Registry defaults.
    result = run_experiment("fig1")
    print(f"\nfig1 defaults: attention share {result.attention_share_percent:.1f}%")

    # 2. Typed config (a dict like {"sequence_length": 256} works too).
    result = run_experiment("fig1", Fig1Config(sequence_length=256))
    print(f"fig1 @256 tokens: attention share {result.attention_share_percent:.1f}%")

    # 3. JSON config file -- what the CLI's --config flag loads.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "fig1.json"
        path.write_text(json.dumps({"sequence_length": 384, "mode": "flops"}))
        config = Fig1Config.from_file(path)
        result = run_experiment("fig1", config)
        print(f"fig1 from {path.name}: attention share {result.attention_share_percent:.1f}%")

    # Machine-readable payload (the CLI's --format json).
    report = run_report("fig5")
    payload = json.dumps(report.payload["result"], indent=2)
    print(f"\nfig5 JSON result ({len(payload)} bytes):")
    print(payload[:400] + " ...")

    # The serving components share the registry under their own kinds.
    print("\nServing component kinds:")
    for kind in ("arrival", "batch-policy", "router"):
        print(f"  {kind:13s} {', '.join(available(kind))}")
    process = create("arrival", "bursty", rate_qps=400.0, burst_ratio=8.0)
    print(f"\ncreate('arrival', 'bursty', ...) -> {process!r}")


if __name__ == "__main__":
    main()
