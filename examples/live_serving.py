"""Live serving: the asyncio gateway, validated against the simulator.

Everything else in this repo predicts serving behavior on a simulated
clock.  This example runs the same dispatch loop against the *wall*
clock: an HTTP server accepts requests over real sockets, the registered
batch policy cuts batches, and an actor per device sleeps through the
cost model's predicted latencies.  Because the gateway and the simulator
share one dispatch core, a trace replayed through the live path must
reproduce the simulated report -- counts exactly, rates within 2 %.

The example does both halves:

1. Serve a burst of requests through real HTTP on a loopback socket and
   print the gateway's /stats payload.
2. Replay the checked-in validation trace through sockets + wall-clock
   sleeps and diff the result against ``simulate_online`` on the same
   trace (the sim-vs-live agreement contract; takes a few wall seconds
   because the sleeps are real).

Run with:  python examples/live_serving.py
"""

from __future__ import annotations

import asyncio

from repro.devices import build_fleet
from repro.evaluation.report import format_key_values, format_table
from repro.live import LiveGateway, LiveServer, http_json, run_live_validation
from repro.serving import SLOSpec, TimeoutBatcher


async def serve_demo() -> dict:
    """Stand up the gateway on an ephemeral port and drive it over HTTP."""
    gateway = LiveGateway(
        build_fleet(("gpu-rtx6000",), dataset="mrpc"),
        "mrpc",
        batch_policy=TimeoutBatcher(batch_size=8, timeout_s=0.02),
        slo=SLOSpec(base_s=0.5),
    )
    server = LiveServer(gateway, host="127.0.0.1", port=0)
    await server.start()
    host, port = server.host, server.port

    # Fire-and-forget submissions land in the batcher's queue...
    for length in (48, 64, 96, 128):
        status, body = await http_json(
            host, port, "POST", "/v1/requests", {"length": length}
        )
        assert status == 200 and body["status"] == "queued"
    # ...while a waited request blocks until its batch has run.
    status, done = await http_json(
        host, port, "POST", "/v1/requests", {"length": 64, "wait": True}
    )
    print(
        format_key_values(
            {
                "waited request": f"id={done['request_id']} on_time={done['on_time']}",
                "observed latency": f"{done['latency_ms']:.1f} ms",
            }
        )
    )

    status, final = await http_json(host, port, "POST", "/shutdown")
    await server.close()
    return final


def main() -> None:
    final = asyncio.run(serve_demo())
    print(
        format_key_values(
            {
                "requests served": final["num_completed"],
                "batches": final["num_batches"],
                "attainment": f"{final['attainment_rate']:.3f}",
                "worker restarts": final["live"]["worker_restarts"],
            }
        )
    )

    print("\nReplaying the validation trace (real sockets, real sleeps)...")
    result = run_live_validation(tolerance=0.02)
    agreement = result["agreement"]
    rows = [
        {
            "metric": key,
            "simulated": entry["sim"],
            "live": entry["live"],
            "agreement": "match" if entry["match"] else "MISMATCH",
        }
        for key, entry in agreement["counts"].items()
    ] + [
        {
            "metric": key,
            "simulated": f"{entry['sim']:.4f}",
            "live": f"{entry['live']:.4f}",
            "agreement": f"{100 * entry['relative_error']:.2f}% err",
        }
        for key, entry in agreement["rates"].items()
    ]
    print(
        format_table(
            rows,
            title="Sim vs live on the checked-in validation trace",
        )
    )
    verdict = "within" if agreement["within_tolerance"] else "OUTSIDE"
    print(f"agreement {verdict} tolerance ({100 * agreement['tolerance']:.0f}%)")


if __name__ == "__main__":
    main()
