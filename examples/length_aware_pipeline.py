"""Length-aware dynamic pipelining on the Fig. 5 example batch.

Schedules the paper's worked example (five sequences, lengths 140/100/82/78/72,
two encoder layers) through the three coarse-grained stages with the proposed
length-aware scheduler, a padded scheduler and a non-pipelined scheduler, then
renders an ASCII Gantt chart of the length-aware timing diagram -- the
reproduction of Fig. 5(a).

Run with:  python examples/length_aware_pipeline.py
"""

from __future__ import annotations

from repro.evaluation import run_fig5_schedule
from repro.evaluation.report import format_key_values, format_table
from repro.scheduling import ScheduleResult


def render_gantt(result: ScheduleResult, width: int = 100) -> str:
    """Render a coarse ASCII Gantt chart (one row per stage) of a schedule."""
    makespan = result.makespan_cycles
    scale = width / makespan
    lines = []
    for stage in result.timeline.stage_names():
        row = [" "] * width
        for event in result.timeline.events_for_stage(stage):
            start = int(event.start * scale)
            end = max(int(event.end * scale), start + 1)
            label = str(event.sequence_id)
            for position in range(start, min(end, width)):
                row[position] = label
        lines.append(f"{stage:<10} |{''.join(row)}|")
    lines.append(f"{'':<10}  0 {'cycles':^{width - 10}} {makespan}")
    return "\n".join(lines)


def main() -> None:
    result = run_fig5_schedule()

    print(format_table(result.as_rows(), title="Fig. 5 - schedulers compared on the example batch"))
    print(
        format_key_values(
            {
                "batch (sorted by decreasing length)": result.lengths,
                "saved vs no pipelining (cycles)": result.saved_cycles_vs_sequential,
                "saved vs padding (cycles)": result.saved_cycles_vs_padded,
                "length-aware stage utilization": round(
                    result.length_aware.average_utilization, 3
                ),
            },
            title="Length-aware dynamic pipeline summary",
        )
    )
    print("Length-aware timing diagram (digits are sequence ids, stages run top to bottom):\n")
    print(render_gantt(result.length_aware))
    print("\nPadded (TensorRT-style) timing diagram for comparison:\n")
    print(render_gantt(result.padded))


if __name__ == "__main__":
    main()
