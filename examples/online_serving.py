"""Open-loop online serving: latency vs offered load on a small fleet.

The closed-batch experiments measure how fast pre-formed batches of 16 drain
through the accelerator.  This example asks the deployment question instead:
requests arrive over time (Poisson traffic), a dynamic batcher cuts batches
under a 20 ms deadline, and a least-loaded router spreads them over two
boards.  Sweeping the offered QPS shows the classic hockey-stick: flat tail
latency at low load, then divergence once the fleet saturates -- and the gap
between the closed-loop drain rate and the sustainable open-loop rate shows
what deadline-pressured small batches cost on a deeply pipelined design.

Run with:  python examples/online_serving.py
"""

from __future__ import annotations

from repro.devices import build_fleet
from repro.evaluation.report import format_key_values, format_table
from repro.evaluation.serving_sweep import build_serving_fleet, run_serving_sweep
from repro.serving import BurstyArrivals, PoissonArrivals, TimeoutBatcher, simulate_online
from repro.transformer import BERT_BASE


def main() -> None:
    sweep = run_serving_sweep(
        datasets=("mrpc", "rte"),
        load_fractions=(0.1, 0.2, 0.3, 0.4, 0.5),
        batch_policies=("timeout",),
        num_requests=192,
        num_accelerators=2,
    )
    print(
        format_table(
            sweep.as_rows(),
            title="Latency vs offered load (BERT-base, 2 accelerators, Poisson arrivals)",
        )
    )
    print(
        format_key_values(
            {
                f"closed-loop capacity ({name})": f"{qps:.1f} seq/s"
                for name, qps in sweep.capacity_qps.items()
            }
        )
    )

    # The same fleet under bursty (MMPP) traffic at a moderate average load:
    # the average rate is identical, but bursts inflate the tail.
    fleet = build_serving_fleet(BERT_BASE, "mrpc", num_accelerators=2)
    rate = 0.3 * sweep.capacity_qps["MRPC"]
    rows = []
    for process in (
        PoissonArrivals(rate_qps=rate),
        BurstyArrivals(rate_qps=rate, burst_ratio=6.0),
    ):
        report = simulate_online(
            fleet,
            "mrpc",
            arrivals=process,
            num_requests=192,
            batch_policy=TimeoutBatcher(batch_size=16, timeout_s=20e-3),
        )
        rows.append(report.as_row())
    print(format_table(rows, title="Poisson vs bursty traffic at the same average load"))
    print(
        "Bursty arrivals push the same average QPS through short high-rate windows, so\n"
        "queues form during bursts and the p99 latency inflates even though the fleet\n"
        "is far from saturated on average."
    )

    # The unified Device API mixes backends in one fleet: the cycle-accurate
    # sparse FPGA next to the analytical RTX 6000 roofline model.  Device-level
    # continuous batching lets the FPGA admit a new batch while the previous
    # one drains its coarse pipeline, which recovers the capacity that small
    # deadline-pressured batches otherwise leave on the table.
    mixed = build_fleet(("sparse-fpga", "gpu-rtx6000"), model=BERT_BASE, dataset="mrpc")
    small_batches = TimeoutBatcher(batch_size=4, timeout_s=2e-3)
    rows = []
    for continuous in (False, True):
        report = simulate_online(
            mixed,
            "mrpc",
            arrivals=PoissonArrivals(rate_qps=2.0 * rate),
            num_requests=192,
            batch_policy=small_batches,
            continuous_batching=continuous,
        )
        row = report.as_row()
        row["continuous"] = continuous
        rows.append(row)
    print(format_table(rows, title="Mixed fleet (FPGA + GPU): block-per-batch vs continuous batching"))
    print(
        format_table(
            [
                {
                    "device": device.accelerator,
                    "backend": device.backend,
                    "requests": device.num_requests,
                    "energy_j": (
                        round(device.energy_joules, 2)
                        if device.energy_joules is not None
                        else None
                    ),
                }
                for device in report.devices
            ],
            title="Per-device accounting of the continuous-batching run",
        )
    )


if __name__ == "__main__":
    main()
