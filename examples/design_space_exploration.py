"""Design-space exploration with Algorithm 1 (encoder coarse-grained stage allocation).

Builds the sparse-attention encoder operator graph for a chosen model, runs
the stage-allocation algorithm at a dataset's average sequence length, and
reports the resulting coarse-grained stages, their resource usage and their
balanced latencies.  It then compares the Algorithm-1-derived design against
the canonical three-stage design on a sampled batch.

Run with:  python examples/design_space_exploration.py [model] [dataset]
           (defaults: bert-base rte)
"""

from __future__ import annotations

import sys

from repro.datasets import sample_lengths
from repro.evaluation.report import format_key_values, format_table
from repro.hardware import build_sparse_accelerator
from repro.operators import build_sparse_encoder_graph
from repro.scheduling import LengthAwareScheduler, allocate_stages, plan_to_accelerator
from repro.transformer import get_dataset_config, get_model_config


def main() -> None:
    model_key = sys.argv[1] if len(sys.argv) > 1 else "bert-base"
    dataset_key = sys.argv[2] if len(sys.argv) > 2 else "rte"
    model = get_model_config(model_key)
    dataset = get_dataset_config(dataset_key)

    # ------------------------------------------------------------------
    # Algorithm 1: operator graph -> coarse-grained stage plan.
    # ------------------------------------------------------------------
    graph = build_sparse_encoder_graph(model, top_k=30)
    plan = allocate_stages(graph, avg_seq=dataset.avg_length)

    stage_rows = []
    for stage in plan.stages:
        resources = stage.resources(plan.graph)
        stage_rows.append(
            {
                "stage": stage.index + 1,
                "operators": ", ".join(stage.operator_names),
                "dsp": resources.dsp,
                "lut": resources.lut,
                "work@avg (MFLOP)": round(stage.work(plan.graph, dataset.avg_length) / 1e6, 1),
            }
        )
    print(format_table(stage_rows, title=f"Algorithm 1 stage plan ({model.name}, s_avg={dataset.avg_length})"))
    print(
        format_key_values(
            {
                "stages": plan.num_stages,
                "total DSP": plan.total_resources().dsp,
                "fits SLR0": plan.fits_capacity(),
            }
        )
    )

    # ------------------------------------------------------------------
    # Compare the plan-derived accelerator with the canonical 3-stage design.
    # ------------------------------------------------------------------
    planned = plan_to_accelerator(plan, model, max_seq=dataset.max_length, top_k=30)
    canonical = build_sparse_accelerator(
        model, top_k=30, avg_seq=dataset.avg_length, max_seq=dataset.max_length
    )
    lengths = [int(x) for x in sample_lengths(dataset, 16)]
    scheduler = LengthAwareScheduler()
    rows = []
    for name, accelerator in (("Algorithm 1 plan", planned), ("canonical 3-stage", canonical)):
        result = scheduler.schedule(accelerator, lengths)
        rows.append(
            {
                "design": name,
                "stages": len(accelerator.stages),
                "batch latency (ms)": round(result.makespan_seconds * 1e3, 2),
                "avg stage utilization": round(result.average_utilization, 3),
            }
        )
    print(format_table(rows, title=f"Batch of 16 {dataset.name} sequences under length-aware scheduling"))


if __name__ == "__main__":
    main()
