"""Multi-tenant serving: SLO classes, priority batching, and isolation.

One fleet, three tenants: ``interactive`` (50 ms deadline, top priority),
``batch`` (500 ms deadline), and ``best-effort`` (no SLO -- background
work that soaks up leftover capacity).  The demo overloads a shared
two-device fleet with an interactive stream plus a 3x best-effort flood
and shows the multi-tenant machinery holding the line:

* the ``priority-deadline`` policy forms higher tiers first and preempts
  lower tiers that would make interactive miss its latest feasible start;
* a per-class queue limit keeps the flood from monopolizing the admission
  window (the excess sheds, charged to best-effort);
* the per-class report shows interactive keeping at least the attainment
  it would get on its own fair-share fleet -- sharing costs the premium
  tier nothing, and the flood pays for the overload.

Run with:  python examples/multi_tenant_serving.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.devices import build_fleet
from repro.evaluation.report import format_key_values
from repro.serving import (
    DeadlineBatcher,
    PoissonArrivals,
    PriorityDeadlineBatcher,
    simulate_online,
)
from repro.serving.classes import get_request_class

INTERACTIVE_QPS = 100.0
FLOOD_QPS = 300.0
NUM_EACH = 64


def streams():
    """An interactive stream and a best-effort flood, explicitly tagged."""
    interactive_cls = get_request_class("interactive")
    base = PoissonArrivals(rate_qps=INTERACTIVE_QPS).generate("mrpc", NUM_EACH, seed=11)
    interactive = [
        replace(r, request_class="interactive", deadline=interactive_cls.slo.deadline_for(r))
        for r in base
    ]
    flood_base = PoissonArrivals(rate_qps=FLOOD_QPS).generate("mrpc", NUM_EACH, seed=12)
    flood = [
        replace(r, request_id=r.request_id + 1000, request_class="best-effort")
        for r in flood_base
    ]
    merged = sorted(interactive + flood, key=lambda r: (r.arrival_time, r.request_id))
    return interactive, merged


def main() -> None:
    interactive, merged = streams()

    # Baseline: interactive alone on its fair share of the fleet (weight
    # 0.5 of two devices = one device).
    isolated = simulate_online(
        build_fleet(("gpu-rtx6000",), dataset="mrpc", replicas=1),
        "mrpc",
        arrivals=interactive,
        batch_policy=DeadlineBatcher(batch_size=8, timeout_s=0.01),
        seed=5,
    )

    # The shared fleet: both tenants, priority formation, flood bounded.
    shared = simulate_online(
        build_fleet(("gpu-rtx6000",), dataset="mrpc", replicas=2),
        "mrpc",
        arrivals=merged,
        batch_policy=PriorityDeadlineBatcher(batch_size=8, timeout_s=0.01),
        class_queue_limits={"best-effort": 2},
        seed=5,
    )

    summaries = shared.class_summaries
    lines = {
        "isolated interactive attainment": f"{isolated.attainment_rate:.1%}"
        " (fair-share fleet, interactive traffic only)",
        "shared interactive attainment": f"{summaries['interactive'].attainment:.1%}"
        " (same stream + 3x best-effort flood)",
        "interactive shed on shared fleet": summaries["interactive"].shed,
        "best-effort completed / shed": (
            f"{summaries['best-effort'].completed} / {summaries['best-effort'].shed}"
            f" of {summaries['best-effort'].offered} offered"
        ),
        "lower-tier preemptions": shared.num_preemptions,
    }
    print(format_key_values(lines, title="Isolation under overload (MRPC, 2x gpu-rtx6000)"))

    assert summaries["interactive"].attainment >= isolated.attainment_rate
    assert summaries["interactive"].shed == 0
    print(
        "\nSharing cost the interactive tier nothing: the priority policy and\n"
        "the best-effort queue limit pushed every shed onto the flood."
    )


if __name__ == "__main__":
    main()
