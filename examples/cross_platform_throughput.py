"""Cross-platform throughput and energy comparison (Fig. 7 + Table 2).

Evaluates the four paper workloads (BERT-base on SQuAD/RTE/MRPC, BERT-large
on SQuAD, batch 16) on the CPU / edge-GPU / server-GPU analytical models, the
FPGA baseline and the proposed length-aware sparse-attention FPGA design,
then prints the speedup matrix, the geometric means next to the paper's
reported values, and the Table 2 energy-efficiency rows.

Run with:  python examples/cross_platform_throughput.py
"""

from __future__ import annotations

from repro.evaluation import run_fig7_throughput, run_table2_energy
from repro.evaluation.report import format_table


def main() -> None:
    end_to_end = run_fig7_throughput(panel="end_to_end")
    attention = run_fig7_throughput(panel="attention")

    print(format_table(end_to_end.as_rows(), title="Fig. 7(a) - end-to-end speedups of the proposed design"))
    print(
        format_table(
            [
                {
                    "platform": key,
                    "measured geomean": round(value, 1),
                    "paper geomean": end_to_end.paper_geomeans()[key],
                }
                for key, value in end_to_end.geomean_speedups().items()
            ],
            title="Fig. 7(a) geometric means",
        )
    )
    print(format_table(attention.as_rows(), title="Fig. 7(b) - attention-core speedups of the proposed design"))
    print(
        format_table(
            [
                {
                    "platform": key,
                    "measured geomean": round(value, 1),
                    "paper geomean": attention.paper_geomeans()[key],
                }
                for key, value in attention.geomean_speedups().items()
            ],
            title="Fig. 7(b) geometric means",
        )
    )

    table2 = run_table2_energy(fig7=end_to_end)
    print(format_table(table2.as_rows(), title="Table 2 - throughput & energy efficiency"))


if __name__ == "__main__":
    main()
