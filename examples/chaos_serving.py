"""Chaos serving: fault injection and the remedied serving stack.

A three-GPU fleet serves MRPC under a seeded crash+straggler schedule --
devices crash and restart (losing in-flight batches) and intermittently
run 3x slow.  The unremedied baseline replays lost batches once and hopes;
the remedied stack layers retry-with-backoff, cross-device hedging, and a
failure-aware cost-model router that blacklists crashed devices (with
half-open probing), recovering strictly higher deadline attainment at the
same offered load on the identical fault schedule.

Run with:  python examples/chaos_serving.py
"""

from __future__ import annotations

from repro.devices import build_fleet
from repro.evaluation.report import format_key_values
from repro.faults import CrashRestartFaults, StragglerFaults
from repro.serving import (
    PoissonArrivals,
    SLOSpec,
    TimeoutBatcher,
    get_router,
    simulate_online,
)


def run(*, remedied: bool):
    return simulate_online(
        build_fleet("gpu-rtx6000", replicas=3, dataset="mrpc"),
        "mrpc",
        arrivals=PoissonArrivals(rate_qps=80.0),
        num_requests=128,
        batch_policy=TimeoutBatcher(batch_size=8, timeout_s=0.02),
        router=get_router("cost-model", blacklist_s=0.2 if remedied else 0.0),
        slo=SLOSpec(base_s=0.15),
        faults=[
            CrashRestartFaults(mtbf_s=0.25, downtime_s=0.08),
            StragglerFaults(mtbs_s=0.25, duration_s=0.15, multiplier=3.0),
        ],
        hedging=remedied,
        max_retries=2 if remedied else 0,
        retry_backoff_s=0.01,
    )


def describe(report) -> dict[str, str]:
    return {
        "attainment": f"{report.attainment_rate:.1%}",
        "crashes (batches lost)": str(report.num_crashes),
        "requests replayed / retried / shed": (
            f"{report.num_replayed} / {report.num_retries} / "
            f"{report.num_shed_crashed}"
        ),
        "hedged batches (mirror wins)": (
            f"{report.num_hedged} ({report.num_hedge_wins})"
        ),
        "fleet downtime": f"{sum(d.downtime_s for d in report.devices) * 1e3:.0f} ms",
        "blacklisted time": (
            f"{sum(d.blacklisted_s for d in report.devices) * 1e3:.0f} ms"
        ),
    }


def main() -> None:
    baseline = run(remedied=False)
    remedied = run(remedied=True)

    print(format_key_values(describe(baseline), title="Baseline (no remedies)"))
    print()
    print(
        format_key_values(
            describe(remedied),
            title="Remedied (hedging + retries + failure-aware routing)",
        )
    )
    print()
    print(
        format_key_values(
            {
                "attainment delta": (
                    f"{remedied.attainment_rate - baseline.attainment_rate:+.1%} "
                    "at equal offered load on the identical fault schedule"
                )
            }
        )
    )


if __name__ == "__main__":
    main()
