"""Quickstart: quantized Top-k sparse attention in five minutes.

Walks through the paper's core idea on a small synthetic example:

1. build a BERT-style model with dense attention (the teacher / baseline);
2. swap in the quantized Top-k sparse attention operator;
3. compare the two on one input: which candidates were selected, how close the
   attention probabilities and the final predictions are;
4. map the sparse encoder onto the FPGA model and schedule a small batch with
   the length-aware dynamic pipeline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import SparseAttentionConfig, make_sparse_attention_impl, sparse_attention_head
from repro.datasets import generate_token_sequence
from repro.evaluation.report import format_key_values, format_table
from repro.hardware import build_sparse_accelerator
from repro.scheduling import LengthAwareScheduler, PaddedScheduler
from repro.transformer import ModelConfig, TransformerModel
from repro.transformer.attention import project_qkv, split_heads


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    # 1. A small BERT-style model with dense attention.
    # ------------------------------------------------------------------
    config = ModelConfig(name="demo", num_layers=2, hidden_dim=128, num_heads=4, vocab_size=8000)
    dense_model = TransformerModel(config, seed=0)
    sequence = generate_token_sequence(length=48, vocab_size=config.vocab_size, rng=rng)

    dense_prediction = dense_model.classify(sequence.token_ids, segment_ids=sequence.segment_ids)

    # ------------------------------------------------------------------
    # 2. The same model with quantized Top-k sparse attention (Top-8, 4-bit).
    # ------------------------------------------------------------------
    sparse_model = dense_model.with_attention(make_sparse_attention_impl(top_k=8, quant_bits=4))
    sparse_prediction = sparse_model.classify(sequence.token_ids, segment_ids=sequence.segment_ids)

    print(
        format_key_values(
            {
                "sequence length": sequence.length,
                "dense prediction": dense_prediction.prediction,
                "sparse prediction": sparse_prediction.prediction,
                "dense logits": np.round(dense_prediction.logits, 4),
                "sparse logits": np.round(sparse_prediction.logits, 4),
            },
            title="Step 1-2: dense vs sparse model predictions",
        )
    )

    # ------------------------------------------------------------------
    # 3. Look inside one attention head: what did pre-selection keep?
    # ------------------------------------------------------------------
    hidden = dense_model.encode(sequence.token_ids, segment_ids=sequence.segment_ids)
    attention_weights = dense_model.weights.layers[0].attention
    q, k, v = project_qkv(hidden, attention_weights)
    q0, k0, v0 = (split_heads(t, config.num_heads)[0] for t in (q, k, v))

    head = sparse_attention_head(q0, k0, v0, SparseAttentionConfig(top_k=8, quant_bits=4))
    dense_scores = q0 @ k0.T / np.sqrt(config.head_dim)
    true_top8 = set(np.argsort(dense_scores[0])[-8:])
    selected = set(int(i) for i in head.selected[0])

    print(
        format_key_values(
            {
                "query row": 0,
                "candidates kept by quantized pre-selection": sorted(selected),
                "true Top-8 of the exact scores": sorted(true_top8),
                "overlap": f"{len(selected & true_top8)}/8",
                "attention work skipped": f"{head.stats.sparsity:.0%}",
            },
            title="Step 3: candidate pre-selection (head 0, layer 0)",
        )
    )

    # ------------------------------------------------------------------
    # 4. Map the encoder onto the FPGA model and schedule a batch.
    # ------------------------------------------------------------------
    accelerator = build_sparse_accelerator(config, top_k=8, avg_seq=48, max_seq=96)
    lengths = [96, 64, 48, 40, 32]
    length_aware = LengthAwareScheduler().schedule(accelerator, lengths)
    padded = PaddedScheduler().schedule(accelerator, lengths)

    print(
        format_table(
            [
                {
                    "scheduler": result.scheduler,
                    "batch latency (us)": round(result.makespan_seconds * 1e6, 1),
                    "avg stage utilization": round(result.average_utilization, 3),
                }
                for result in (length_aware, padded)
            ],
            title="Step 4: scheduling a 5-sequence batch on the FPGA model",
        )
    )
    print(f"Length-aware speedup over padding: {length_aware.speedup_over(padded):.2f}x")


if __name__ == "__main__":
    main()
