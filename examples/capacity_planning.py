"""Capacity planning: how many devices do I buy?

Runs the ``plan`` experiment on the checked-in diurnal reference trace: the
planner enumerates every fleet composition over a three-device catalog
(sparse FPGA, RTX 6000, Xeon), prices each at its catalog $/hr, simulates the
trace through the fast-path serving engine, and reports the cheapest fleet
that clears a 95% SLO-attainment target plus the full Pareto frontier over
dollar cost, attainment, and energy per million requests.

A second pass re-runs the winning fleet under the queue-depth autoscaler with
a provisioning lag, showing what elasticity buys on the same workload.

Run with:  python examples/capacity_planning.py
Maintainers: ``--write-reference`` refreshes the checked-in frontier at
benchmarks/results/planner_pareto.json after an intentional planner change.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.experiments.spec import get_experiment, run_experiment


def write_reference(result) -> None:
    """Refresh the checked-in reference frontier and its rendered report."""
    results_dir = Path(__file__).resolve().parents[1] / "benchmarks" / "results"
    payload = {
        "description": "Reference Pareto frontier for `repro plan` on the checked-in "
        "diurnal trace (300 requests, mrpc, 95% attainment target). "
        "Regenerate with: PYTHONPATH=src python examples/capacity_planning.py --write-reference",
        "attainment_target": 0.95,
        "trace": "src/repro/planner/traces/reference_trace.json",
        "chosen": result.search.chosen.to_dict(),
        "pareto_frontier": [c.to_dict() for c in result.search.frontier],
    }
    (results_dir / "planner_pareto.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    text = get_experiment("plan").render(result)
    (results_dir / "planner_pareto.txt").write_text(
        text if text.endswith("\n") else text + "\n"
    )
    print(f"wrote {results_dir / 'planner_pareto.json'}")


def main() -> None:
    result = run_experiment("plan", compare_autoscaler="queue-depth")
    print(get_experiment("plan").render(result))

    chosen = result.search.chosen
    frontier = result.search.frontier
    print(
        f"Buy {chosen.fleet} (${chosen.price_per_hour_usd:.2f}/hr): the cheapest "
        f"fleet that clears 95% attainment on the diurnal trace.\n"
        f"The frontier keeps {len(frontier)} of {len(result.search.candidates)} "
        "evaluated compositions -- the GPU fleets win on dollars, the sparse-FPGA "
        "fleets on joules per million requests; everything else is dominated."
    )
    if "--write-reference" in sys.argv[1:]:
        write_reference(result)


if __name__ == "__main__":
    main()
