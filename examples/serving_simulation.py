"""Serving a synthetic request stream on the proposed accelerator.

Draws a few hundred requests from each dataset's Table 1 length distribution,
buckets them into batches of 16, serves them on the proposed design with the
length-aware scheduler and with the padding baseline, and reports aggregate
throughput plus the p50/p99 per-sequence latency -- the view a deployment
engineer would want before adopting the accelerator.

Run with:  python examples/serving_simulation.py
"""

from __future__ import annotations

from repro.evaluation.report import format_table
from repro.hardware import build_sparse_accelerator
from repro.scheduling import PaddedScheduler, simulate_serving
from repro.transformer import BERT_BASE, DATASET_ZOO


def main() -> None:
    rows = []
    for dataset in DATASET_ZOO.values():
        accelerator = build_sparse_accelerator(
            BERT_BASE, top_k=30, avg_seq=dataset.avg_length, max_seq=dataset.max_length
        )
        for label, scheduler in (("length-aware (ours)", None), ("padded baseline", PaddedScheduler())):
            report = simulate_serving(
                accelerator, dataset, num_requests=192, batch_size=16, scheduler=scheduler
            )
            row = report.as_row()
            row["scheduler"] = label
            rows.append(row)

    print(
        format_table(
            rows,
            title="Serving 192 synthetic requests per dataset on the proposed FPGA design (BERT-base)",
        )
    )
    print(
        "The length-aware scheduler sustains the same hardware at a higher request rate and\n"
        "lower tail latency because no cycle is spent on padding tokens and the coarse\n"
        "pipeline never drains between sequences."
    )


if __name__ == "__main__":
    main()
