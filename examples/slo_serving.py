"""SLO-aware serving: deadline attainment at equal offered load.

Every request gets a 50 ms latency budget.  The deadline-blind stack
(timeout batching + least-loaded routing) lets requests age the full
batching timeout and serves hopeless ones late, so attainment collapses as
load rises.  The SLO-aware stack (EDF deadline batching + cost-model
routing) dispatches on deadline pressure and sheds provably-late requests,
holding p99 near the budget and attainment several times higher at the
same offered load -- goodput (on-time completions/s) keeps climbing where
the blind stack's falls to zero.

Run with:  python examples/slo_serving.py
"""

from __future__ import annotations

from repro.evaluation.report import format_key_values, format_table
from repro.experiments import run_experiment


def main() -> None:
    result = run_experiment(
        "serving-sweep",
        {
            "datasets": ("mrpc",),
            "load_fractions": (0.25, 0.5, 0.75, 0.9, 1.1),
            "batch_policies": ("timeout", "deadline"),
            "routers": ("least-loaded", "cost-model"),
            "slo_ms": 50.0,
            "requests": 96,
        },
    )
    print(
        format_table(
            result.as_rows(),
            title="Deadline attainment at equal offered load (50 ms SLO, MRPC)",
        )
    )

    blind = dict(result.attainment_curve("MRPC", "timeout"))
    aware = dict(result.attainment_curve("MRPC", "deadline"))
    print(
        format_key_values(
            {
                f"attainment at load {load}": (
                    f"{blind[load]:.1%} (timeout+least-loaded) vs "
                    f"{aware[load]:.1%} (deadline+cost-model)"
                )
                for load in sorted(blind)
            }
        )
    )


if __name__ == "__main__":
    main()
