"""Accuracy-vs-sparsity study (a reduced version of the paper's Fig. 6).

Sweeps the Top-k operating point for a subset of the (model, dataset) pairs
and prints the proxy-task scores next to the dense baseline, plus the
aggregate accuracy drop at each k.  The full ten-pair sweep is available via
``repro.evaluation.run_fig6_accuracy`` (see benchmarks/test_bench_fig6_accuracy.py).

Run with:  python examples/sparse_attention_accuracy.py
"""

from __future__ import annotations

from repro.evaluation import run_fig6_accuracy
from repro.evaluation.report import format_key_values, format_table


def main() -> None:
    result = run_fig6_accuracy(
        pairs=(
            ("distilbert", "mrpc"),
            ("distilbert", "rte"),
            ("bert-base", "squad"),
        ),
        top_k_values=(50, 30, 20, 10),
        num_examples=6,
        max_length_cap=96,
    )

    print(format_table(result.as_rows(), title="Top-k sparse attention accuracy (proxy tasks)"))
    print(
        format_key_values(
            {
                f"average drop @ Top-{k}": f"{result.average_drop(k):.2f} points"
                for k in sorted(result.top_k_values, reverse=True)
            },
            title="Aggregate accuracy drop vs the dense baseline",
        )
    )
    print(
        "Interpretation: as in the paper, mild sparsity (Top-30 and above) stays close to\n"
        "the dense baseline while aggressive sparsity (Top-10) degrades noticeably."
    )


if __name__ == "__main__":
    main()
