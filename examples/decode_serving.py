"""Decode serving: continuous batching and top-k under a KV-cache bound.

Generation splits every request into a prefill pass and per-token decode
steps whose latency is set by the KV-cache bytes read per step.  Two
results fall out of sweeping that model:

* At saturation, iteration-level continuous batching (refill the running
  batch the moment a request finishes) sustains strictly higher token
  goodput than the request-level gang baseline (drain to the slowest
  straggler) -- the vLLM/Orca result, on this simulator's cost model.
* The paper's top-k sparse attention caps the KV rows *read* per decode
  step, so an aggressive k admits more concurrent decodes inside the same
  inter-token latency budget -- priced by the Fig. 6 proxy accuracy drop.

Run with:  python examples/decode_serving.py
"""

from __future__ import annotations

from repro.evaluation.report import format_key_values, format_table
from repro.experiments import run_experiment


def main() -> None:
    result = run_experiment(
        "decode-sweep",
        {
            "dataset": "mrpc",
            "load_fractions": (0.5, 1.1),
            "requests": 80,
            "kv_cache_mb": 32.0,
            "mean_output_len": 192.0,
            "topk": (5, 30),
        },
    )
    print(
        format_table(
            result.as_rows(),
            title="Decode sweep: iteration-level vs request-level (MRPC, 32 MiB KV)",
        )
    )

    iteration = dict(result.tokens_curve("iteration"))
    gang = dict(result.tokens_curve("request"))
    print(
        format_key_values(
            {
                f"tokens/s at load {load}": (
                    f"{iteration[load]:.0f} (iteration) vs {gang[load]:.0f} (gang)"
                )
                for load in sorted(iteration)
            }
            | {"saturation gain": f"{result.saturation_gain():.3f}x"}
        )
    )

    print(
        format_table(
            [point.as_row() for point in result.topk_points],
            title=(
                "Top-k operating points: decode concurrency inside a "
                f"{result.itl_budget_ms:g} ms inter-token budget"
            ),
        )
    )


if __name__ == "__main__":
    main()
