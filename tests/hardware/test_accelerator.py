"""Tests for the top-level accelerator factories and their design properties."""

from __future__ import annotations

import pytest

from repro.hardware.accelerator import (
    STAGE_NAMES,
    build_baseline_accelerator,
    build_sparse_accelerator,
)
from repro.transformer.configs import BERT_BASE, BERT_LARGE, DISTILBERT


@pytest.fixture(scope="module")
def sparse_accel():
    return build_sparse_accelerator(BERT_BASE, top_k=30, avg_seq=128, max_seq=512)


@pytest.fixture(scope="module")
def baseline_accel():
    return build_baseline_accelerator(BERT_BASE, avg_seq=128, max_seq=512)


class TestSparseAcceleratorDesign:
    def test_has_three_coarse_stages(self, sparse_accel):
        assert [stage.name for stage in sparse_accel.stages] == list(STAGE_NAMES)

    def test_fits_in_slr0(self, sparse_accel):
        assert sparse_accel.fits_capacity()

    def test_dsp_utilization_is_high(self, sparse_accel):
        # The design-space exploration should leave most of the DSP budget in use.
        assert sparse_accel.utilization()["dsp"] > 0.75

    def test_stage_latencies_balanced_at_design_point(self, sparse_accel):
        latencies = sparse_accel.stage_latencies(128)
        assert max(latencies) / min(latencies) < 1.6

    def test_latency_roughly_linear_in_sequence_length(self, sparse_accel):
        # The proposed design's operators are O(n); doubling the length should
        # roughly double the per-layer latency (within fill overheads and the
        # quadratic-but-cheap pre-selection term).
        short = sparse_accel.layer_latency_cycles(128)
        long = sparse_accel.layer_latency_cycles(256)
        assert 1.7 < long / short < 2.8

    def test_peak_ops_close_to_paper_value(self, sparse_accel):
        # 3000 DSP x 2 ops x 200 MHz = 1.2 TOPS attainable; the design uses
        # most of it.
        assert sparse_accel.peak_ops() > 0.8 * 1.2e12

    def test_stage_lookup(self, sparse_accel):
        assert sparse_accel.stage_by_name("At-Comp").name == "At-Comp"
        with pytest.raises(KeyError):
            sparse_accel.stage_by_name("missing")

    def test_sequence_latency_scales_with_model_depth(self):
        base = build_sparse_accelerator(BERT_BASE, avg_seq=128, max_seq=256)
        distil = build_sparse_accelerator(DISTILBERT, avg_seq=128, max_seq=256)
        assert base.sequence_latency_cycles(128) > 1.8 * distil.sequence_latency_cycles(128)

    def test_attention_only_variant_has_two_stages_and_no_ffn(self):
        accel = build_sparse_accelerator(
            BERT_BASE, avg_seq=128, max_seq=256, attention_core_only=True
        )
        assert len(accel.stages) == 2
        all_ops = [name for stage in accel.stages for name in stage.operator_names()]
        assert "ffn_linear1" not in all_ops
        assert "qkv_linear" not in all_ops


class TestBaselineAcceleratorDesign:
    def test_fits_in_slr0(self, baseline_accel):
        assert baseline_accel.fits_capacity()

    def test_has_dense_attention_operators(self, baseline_accel):
        all_ops = [name for stage in baseline_accel.stages for name in stage.operator_names()]
        assert "attention_scores" in all_ops
        assert "approx_scores" not in all_ops

    def test_baseline_slower_than_sparse_at_long_lengths(self, sparse_accel, baseline_accel):
        # At the padded SQuAD length the dense baseline's quadratic attention
        # dominates; the sparse design is faster per layer.
        assert baseline_accel.layer_latency_cycles(512) > sparse_accel.layer_latency_cycles(512)

    def test_bert_large_design_also_fits(self):
        accel = build_sparse_accelerator(BERT_LARGE, avg_seq=177, max_seq=821)
        assert accel.fits_capacity()

    def test_attention_only_variant(self):
        accel = build_baseline_accelerator(
            BERT_BASE, avg_seq=128, max_seq=256, attention_core_only=True
        )
        all_ops = [name for stage in accel.stages for name in stage.operator_names()]
        assert set(all_ops) == {"attention_scores", "scale_mask", "softmax", "attention_context"}
