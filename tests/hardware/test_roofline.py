"""Tests for the roofline / CTC-ratio analysis."""

from __future__ import annotations

import pytest

from repro.hardware.accelerator import build_baseline_accelerator, build_sparse_accelerator
from repro.hardware.roofline import (
    DeviceRoofline,
    accelerator_roofline,
    ctc_ratio,
    device_roofline,
    stage_roofline,
)
from repro.transformer.configs import BERT_BASE


@pytest.fixture(scope="module")
def accelerator():
    return build_sparse_accelerator(BERT_BASE, top_k=30, avg_seq=128, max_seq=512)


class TestDeviceRoofline:
    def test_ridge_point(self):
        roof = DeviceRoofline(peak_ops_per_second=1.2e12, memory_bandwidth=400e9)
        assert roof.ridge_operational_intensity == pytest.approx(3.0)

    def test_attainable_performance_clips_at_peak(self):
        roof = DeviceRoofline(peak_ops_per_second=1.2e12, memory_bandwidth=400e9)
        assert roof.attainable(1.0) == pytest.approx(400e9)
        assert roof.attainable(100.0) == pytest.approx(1.2e12)
        assert roof.attainable(0.0) == 0.0

    def test_device_roofline_from_accelerator(self, accelerator):
        roof = device_roofline(accelerator)
        assert roof.peak_ops_per_second == pytest.approx(accelerator.peak_ops())
        assert roof.ridge_operational_intensity > 0


class TestStageRoofline:
    def test_every_stage_gets_a_point(self, accelerator):
        points = accelerator_roofline(accelerator, 128)
        assert len(points) == len(accelerator.stages)
        assert all(point.operations > 0 for point in points)

    def test_stages_are_compute_bound_at_the_design_point(self, accelerator):
        # The paper's argument: on-chip buffering raises the CTC ratio until
        # the stages sit at the computation roof.
        points = accelerator_roofline(accelerator, 128)
        assert all(point.compute_bound for point in points)

    def test_attained_performance_below_stage_peak(self, accelerator):
        for point in accelerator_roofline(accelerator, 128):
            assert point.attained_ops_per_second <= point.peak_ops_per_second * 1.05

    def test_row_serialization(self, accelerator):
        row = stage_roofline(accelerator.stages[0], 128, accelerator.clock_hz).as_row()
        assert set(row) == {"stage", "ops_per_byte", "attained_gops", "bound"}


class TestCtcRatio:
    def test_proposed_stages_keep_high_ctc_at_long_lengths(self):
        # The paper's CTC argument: on-chip buffering keeps every coarse stage
        # well above the device's ridge point even at the maximum SQuAD
        # length.  The matmul-heavy stages perform hundreds of ops per byte;
        # the candidate-loading attention stage is the most memory-intensive
        # one but still stays comfortably compute-bound.
        sparse = build_sparse_accelerator(BERT_BASE, top_k=30, avg_seq=177, max_seq=821)
        ratios = {stage.name: ctc_ratio(stage, 821) for stage in sparse.stages}
        assert ratios["MM|At-Sel"] > 100.0
        assert ratios["FdFwd"] > 100.0
        assert ratios["At-Comp"] > 10.0

    def test_ctc_is_infinite_for_fully_onchip_stage(self, accelerator):
        attention_stage = accelerator.stage_by_name("At-Comp")
        # Remove the only operator with traffic to emulate a fully on-chip stage.
        onchip_ops = [so for so in attention_stage.operators if so.operator.traffic(128) == 0]
        attention_stage_onchip = type(attention_stage)(
            name="onchip",
            operators=onchip_ops,
            cycle_model=attention_stage.cycle_model,
            intra_pipelined=True,
        )
        assert ctc_ratio(attention_stage_onchip, 128) == float("inf")

    def test_ctc_grows_with_topk_sparsity(self):
        # Fewer candidates -> less K/V traffic per unit of qkv work in stage 2.
        dense_baseline = build_baseline_accelerator(BERT_BASE, avg_seq=177, max_seq=821)
        sparse = build_sparse_accelerator(BERT_BASE, top_k=30, avg_seq=177, max_seq=821)
        dense_attention = dense_baseline.stage_by_name("At-Comp")
        sparse_attention = sparse.stage_by_name("At-Comp")
        assert ctc_ratio(sparse_attention, 821) != ctc_ratio(dense_attention, 821)
