"""Tests for the HBM, PE-array and buffer models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import config as global_config
from repro.hardware.buffers import BufferSizing, DoubleBuffer, bram_blocks_for_bytes
from repro.hardware.hbm import HbmModel
from repro.hardware.pe_array import MatMulUnit, PeArrayGeometry


class TestHbmModel:
    def test_default_matches_paper_bandwidth(self):
        assert HbmModel().peak_bandwidth == global_config.FPGA_HBM_BANDWIDTH

    def test_transfer_cycles_scale_linearly(self):
        hbm = HbmModel()
        assert hbm.transfer_cycles(2_000_000) == pytest.approx(
            2 * hbm.transfer_cycles(1_000_000), rel=0.01
        )

    def test_zero_bytes_cost_nothing(self):
        assert HbmModel().transfer_cycles(0) == 0

    def test_minimum_one_cycle(self):
        assert HbmModel().transfer_cycles(1) == 1

    def test_partial_channels_reduce_bandwidth(self):
        hbm = HbmModel()
        full = hbm.transfer_cycles(10_000_000)
        half = hbm.transfer_cycles(10_000_000, channels_used=16)
        assert half == pytest.approx(2 * full, rel=0.01)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            HbmModel(efficiency=0.0)
        with pytest.raises(ValueError):
            HbmModel().transfer_cycles(-1)
        with pytest.raises(ValueError):
            HbmModel().transfer_cycles(10, channels_used=64)

    def test_transfer_seconds_consistent_with_cycles(self):
        hbm = HbmModel()
        assert hbm.transfer_seconds(10_000_000) == pytest.approx(
            hbm.transfer_cycles(10_000_000) / hbm.clock_hz
        )


class TestMatMulUnit:
    def test_parallelism_is_pe_count(self):
        unit = MatMulUnit(PeArrayGeometry(rows=8, cols=16))
        assert unit.parallelism == 128

    def test_matmul_cycles_roofline(self):
        unit = MatMulUnit(PeArrayGeometry(4, 4), pipeline_depth=8)
        # 8x8x8 macs = 512, 16 PEs -> 32 steady cycles + 8 fill.
        assert unit.matmul_cycles(8, 8, 8) == 40

    def test_empty_matmul_is_free(self):
        unit = MatMulUnit(PeArrayGeometry(4, 4))
        assert unit.matmul_cycles(0, 8, 8) == 0

    def test_flops_cycles(self):
        unit = MatMulUnit(PeArrayGeometry(2, 2), pipeline_depth=0)
        assert unit.flops_cycles(2 * 64) == 16  # 64 MACs over 4 PEs

    def test_throughput(self):
        unit = MatMulUnit(PeArrayGeometry(10, 10))
        assert unit.throughput_ops(200e6) == pytest.approx(2 * 100 * 200e6)

    def test_resources_match_parallelism(self):
        unit = MatMulUnit(PeArrayGeometry(4, 8))
        assert unit.resources().dsp == 32

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            PeArrayGeometry(0, 4)


class TestBuffers:
    def test_bram_blocks_for_bytes(self):
        assert bram_blocks_for_bytes(0) == 0
        assert bram_blocks_for_bytes(1) == 1
        assert bram_blocks_for_bytes(4608) == 1
        assert bram_blocks_for_bytes(4609) == 2

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            bram_blocks_for_bytes(-1)

    def test_buffer_sizing_resources(self):
        sizing = BufferSizing(name="s1", bytes_per_slot=10_000, num_slots=2)
        assert sizing.total_bytes == 20_000
        assert sizing.resources().bram == bram_blocks_for_bytes(20_000)

    def test_double_buffer_push_pop_fifo_order(self):
        buffer = DoubleBuffer(name="b")
        buffer.push("a")
        buffer.push("b")
        assert buffer.is_full
        assert buffer.pop() == "a"
        assert buffer.pop() == "b"
        assert buffer.is_empty

    def test_overflow_and_underflow_rejected(self):
        buffer = DoubleBuffer(num_slots=1)
        buffer.push(1)
        with pytest.raises(RuntimeError):
            buffer.push(2)
        buffer.pop()
        with pytest.raises(RuntimeError):
            buffer.pop()

    def test_peek_and_reset(self):
        buffer = DoubleBuffer()
        buffer.push(42)
        assert buffer.peek() == 42
        assert buffer.occupancy == 1
        buffer.reset()
        assert buffer.is_empty

    def test_invalid_slot_count_rejected(self):
        with pytest.raises(ValueError):
            DoubleBuffer(num_slots=0)

    @given(st.integers(0, 10_000_000))
    @settings(max_examples=40, deadline=None)
    def test_hbm_cycles_non_negative_and_monotone(self, num_bytes):
        hbm = HbmModel()
        assert hbm.transfer_cycles(num_bytes) <= hbm.transfer_cycles(num_bytes + 4096)
