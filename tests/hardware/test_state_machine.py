"""Tests for the Fig. 2(b) encoder stage state machine."""

from __future__ import annotations

import pytest

from repro.hardware.state_machine import (
    EncoderState,
    IllegalTransitionError,
    StageStateMachine,
)


def _run_one_layer(machine: StageStateMachine, start: int = 0, stage_cycles: int = 10) -> int:
    t = start
    for state in (EncoderState.MM_ATSEL, EncoderState.ATTENTION, EncoderState.FEEDFORWARD):
        machine.transition(state, t, t + stage_cycles)
        t += stage_cycles
    return t


class TestStateMachine:
    def test_single_layer_walkthrough(self):
        machine = StageStateMachine(sequence_id=0, num_layers=1)
        _run_one_layer(machine)
        machine.finish()
        assert machine.is_done

    def test_multi_layer_walkthrough(self):
        machine = StageStateMachine(sequence_id=1, num_layers=3)
        t = 0
        for _ in range(3):
            t = _run_one_layer(machine, t)
        machine.finish()
        assert machine.is_done
        assert machine.layer == 2

    def test_skipping_attention_is_illegal(self):
        machine = StageStateMachine(sequence_id=0, num_layers=1)
        machine.transition(EncoderState.MM_ATSEL, 0, 5)
        with pytest.raises(IllegalTransitionError):
            machine.transition(EncoderState.FEEDFORWARD, 5, 10)

    def test_finishing_early_is_illegal(self):
        machine = StageStateMachine(sequence_id=0, num_layers=2)
        _run_one_layer(machine)
        with pytest.raises(IllegalTransitionError):
            machine.finish()

    def test_finishing_from_wrong_state_is_illegal(self):
        machine = StageStateMachine(sequence_id=0, num_layers=1)
        machine.transition(EncoderState.MM_ATSEL, 0, 5)
        with pytest.raises(IllegalTransitionError):
            machine.finish()

    def test_extra_layer_is_illegal(self):
        machine = StageStateMachine(sequence_id=0, num_layers=1)
        _run_one_layer(machine)
        with pytest.raises(IllegalTransitionError):
            machine.transition(EncoderState.MM_ATSEL, 30, 40)

    def test_negative_duration_rejected(self):
        machine = StageStateMachine(sequence_id=0, num_layers=1)
        with pytest.raises(ValueError):
            machine.transition(EncoderState.MM_ATSEL, 10, 5)

    def test_busy_cycle_accounting(self):
        machine = StageStateMachine(sequence_id=0, num_layers=2)
        t = _run_one_layer(machine, 0, stage_cycles=10)
        _run_one_layer(machine, t, stage_cycles=20)
        assert machine.total_busy_cycles() == 3 * 10 + 3 * 20
        assert machine.cycles_in_state[EncoderState.MM_ATSEL.value] == 30

    def test_history_records_every_transition(self):
        machine = StageStateMachine(sequence_id=0, num_layers=1)
        _run_one_layer(machine)
        machine.finish()
        assert len(machine.history) == 4  # three stages + END
