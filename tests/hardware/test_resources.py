"""Tests for the FPGA resource model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import config as global_config
from repro.hardware.resources import (
    FpgaResources,
    ResourceBudget,
    U280_SLR0,
    resources_for_matmul,
    resources_for_operator,
)


class TestFpgaResources:
    def test_addition_and_subtraction(self):
        a = FpgaResources(dsp=10, bram=2, lut=100, ff=200)
        b = FpgaResources(dsp=5, bram=1, lut=50, ff=25)
        assert (a + b).dsp == 15
        assert (a - b).lut == 50

    def test_scaling(self):
        a = FpgaResources(dsp=3, bram=1, lut=10, ff=20)
        assert a.scaled(4) == FpgaResources(dsp=12, bram=4, lut=40, ff=80)

    def test_fits_within(self):
        small = FpgaResources(dsp=10, bram=1, lut=10, ff=10)
        assert small.fits_within(U280_SLR0)
        assert not U280_SLR0.fits_within(small)

    def test_utilization_fractions(self):
        used = FpgaResources(dsp=1500, bram=336, lut=215_000, ff=430_000)
        util = used.utilization(U280_SLR0)
        assert util["dsp"] == pytest.approx(0.5)
        assert util["bram"] == pytest.approx(0.5)

    def test_u280_slr0_matches_paper_constants(self):
        assert U280_SLR0.dsp == global_config.FPGA_DSP_SLR0 == 3000


class TestResourceBudget:
    def test_allocate_and_release(self):
        budget = ResourceBudget(FpgaResources(dsp=100, bram=10, lut=1000, ff=1000))
        request = FpgaResources(dsp=60, bram=2, lut=100, ff=100)
        budget.allocate(request)
        assert budget.remaining.dsp == 40
        budget.release(request)
        assert budget.remaining.dsp == 100

    def test_over_allocation_rejected(self):
        budget = ResourceBudget(FpgaResources(dsp=10, bram=10, lut=10, ff=10))
        with pytest.raises(ValueError):
            budget.allocate(FpgaResources(dsp=11))

    def test_can_allocate_does_not_mutate(self):
        budget = ResourceBudget(FpgaResources(dsp=10, bram=10, lut=10, ff=10))
        assert budget.can_allocate(FpgaResources(dsp=10))
        assert budget.allocated.dsp == 0

    def test_release_more_than_allocated_rejected(self):
        budget = ResourceBudget(FpgaResources(dsp=10, bram=10, lut=10, ff=10))
        with pytest.raises(ValueError):
            budget.release(FpgaResources(dsp=1))

    def test_reset(self):
        budget = ResourceBudget(FpgaResources(dsp=10, bram=10, lut=10, ff=10))
        budget.allocate(FpgaResources(dsp=5))
        budget.reset()
        assert budget.allocated.dsp == 0

    def test_utilization_reporting(self):
        budget = ResourceBudget(FpgaResources(dsp=100, bram=100, lut=100, ff=100))
        budget.allocate(FpgaResources(dsp=25, bram=50, lut=10, ff=1))
        util = budget.utilization()
        assert util["dsp"] == pytest.approx(0.25)
        assert util["bram"] == pytest.approx(0.5)


class TestOperatorResourceCosts:
    def test_matmul_uses_one_dsp_per_mac_lane(self):
        # Section 5.2: "8 bits fixed-point number multiply & accumulate
        # consumes 1 DSP unit".
        assert resources_for_matmul(64).dsp == 64

    def test_invalid_parallelism_rejected(self):
        with pytest.raises(ValueError):
            resources_for_matmul(0)
        with pytest.raises(ValueError):
            resources_for_operator("softmax", 0)

    def test_lut_operator_consumes_no_dsp(self):
        assert resources_for_operator("lut", 128).dsp == 0

    def test_select_operator_consumes_no_dsp(self):
        assert resources_for_operator("select", 16).dsp == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            resources_for_operator("fft", 4)

    def test_matmul_kind_routes_to_matmul_cost(self):
        assert resources_for_operator("matmul", 32) == resources_for_matmul(32)

    @given(st.integers(1, 2048))
    @settings(max_examples=40, deadline=None)
    def test_costs_monotone_in_parallelism(self, parallelism):
        smaller = resources_for_matmul(parallelism)
        larger = resources_for_matmul(parallelism + 16)
        assert larger.dsp > smaller.dsp
        assert larger.lut > smaller.lut
