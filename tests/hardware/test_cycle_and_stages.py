"""Tests for the operator cycle model and the coarse-grained stage hardware."""

from __future__ import annotations

import pytest

from repro.hardware.buffers import BufferSizing
from repro.hardware.cycle_model import OperatorCycleModel
from repro.hardware.hbm import HbmModel
from repro.hardware.stages import StageHardware, StageOperator
from repro.operators.graph import Operator


def _matmul_op(name="mm", flops_per_token=1_000_000, bytes_per_token=0):
    return Operator(
        name,
        "matmul",
        lambda s: flops_per_token * s,
        (lambda s: bytes_per_token * s) if bytes_per_token else None,
    )


def _fabric_op(name="ew", work_per_token=1000):
    return Operator(name, "elementwise", lambda s: work_per_token * s)


class TestOperatorCycleModel:
    def test_compute_cycles_scale_with_parallelism(self):
        model = OperatorCycleModel(pipeline_depth=0)
        op = _matmul_op()
        assert model.compute_cycles(op, 10, 100) == pytest.approx(
            model.compute_cycles(op, 10, 200) * 2, rel=0.01
        )

    def test_memory_bound_operator_detected(self):
        model = OperatorCycleModel(hbm=HbmModel())
        # Tiny compute, huge traffic.
        op = Operator("dma", "misc", lambda s: s, bytes_moved=lambda s: 10_000_000 * s)
        timing = model.timing(op, 10, parallelism=1024)
        assert timing.memory_bound
        assert timing.cycles == timing.memory_cycles

    def test_compute_bound_operator(self):
        model = OperatorCycleModel()
        timing = model.timing(_matmul_op(bytes_per_token=1), 100, parallelism=8)
        assert not timing.memory_bound

    def test_zero_work_is_free(self):
        model = OperatorCycleModel()
        op = Operator("nop", "misc", lambda s: 0)
        assert model.cycles(op, 100, 4) == 0

    def test_invalid_parallelism_rejected(self):
        with pytest.raises(ValueError):
            OperatorCycleModel().compute_cycles(_matmul_op(), 10, 0)

    def test_pipeline_depth_added_once(self):
        model = OperatorCycleModel(pipeline_depth=100)
        op = Operator("small", "matmul", lambda s: 2)
        assert model.compute_cycles(op, 1, 1) == 101


class TestStageHardware:
    def _make_stage(self, intra_pipelined: bool) -> StageHardware:
        return StageHardware(
            name="stage",
            operators=[
                StageOperator(_matmul_op("mm1", 1_000_000), parallelism=100),
                StageOperator(_matmul_op("mm2", 500_000), parallelism=50),
                StageOperator(_fabric_op("ew"), parallelism=16),
            ],
            cycle_model=OperatorCycleModel(pipeline_depth=16),
            intra_pipelined=intra_pipelined,
            output_buffer=BufferSizing(name="out", bytes_per_slot=1024),
        )

    def test_sequential_stage_latency_is_sum(self):
        stage = self._make_stage(intra_pipelined=False)
        timings = stage.operator_timings(10)
        assert stage.latency_cycles(10) == sum(t.cycles for t in timings)

    def test_pipelined_stage_latency_is_max_plus_fill(self):
        stage = self._make_stage(intra_pipelined=True)
        timings = stage.operator_timings(10)
        expected = max(t.cycles for t in timings) + 16 * (len(timings) - 1)
        assert stage.latency_cycles(10) == expected

    def test_pipelined_is_never_slower_than_sequential(self):
        sequential = self._make_stage(intra_pipelined=False)
        pipelined = self._make_stage(intra_pipelined=True)
        for seq in (8, 64, 512):
            assert pipelined.latency_cycles(seq) <= sequential.latency_cycles(seq)

    def test_latency_monotone_in_sequence_length(self):
        stage = self._make_stage(intra_pipelined=True)
        assert stage.latency_cycles(100) < stage.latency_cycles(200)

    def test_bottleneck_operator_identified(self):
        stage = self._make_stage(intra_pipelined=True)
        assert stage.bottleneck_operator(64).name == "mm1"

    def test_resources_include_operators_and_buffer(self):
        stage = self._make_stage(intra_pipelined=True)
        assert stage.resources().dsp == 100 + 50 + 16
        assert stage.resources().bram >= 1

    def test_replication_scales_resources(self):
        stage = self._make_stage(intra_pipelined=True)
        stage.replication = 2
        assert stage.total_resources().dsp == 2 * stage.resources().dsp

    def test_latency_seconds(self):
        stage = self._make_stage(intra_pipelined=True)
        assert stage.latency_seconds(64, 200e6) == pytest.approx(
            stage.latency_cycles(64) / 200e6
        )

    def test_empty_stage_rejected(self):
        with pytest.raises(ValueError):
            StageHardware(name="empty", operators=[])

    def test_invalid_parallelism_rejected(self):
        with pytest.raises(ValueError):
            StageOperator(_matmul_op(), parallelism=0)

    def test_operator_names_listed(self):
        stage = self._make_stage(intra_pipelined=False)
        assert stage.operator_names() == ["mm1", "mm2", "ew"]
