"""Tests for the event-driven coarse-grained pipeline simulator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.accelerator import build_sparse_accelerator
from repro.scheduling.length_aware import build_layer_ordered_jobs, sort_batch_by_length
from repro.scheduling.pipeline import PipelineJob, simulate_coarse_pipeline
from repro.transformer.configs import ModelConfig

#: A shallow model keeps the simulated job count small and the tests fast.
_SMALL_MODEL = ModelConfig(name="sim-2L", num_layers=2, hidden_dim=768, num_heads=12)


@pytest.fixture(scope="module")
def accelerator():
    return build_sparse_accelerator(_SMALL_MODEL, top_k=30, avg_seq=96, max_seq=160)


def _jobs(lengths, num_layers=2, billed=None):
    order = sort_batch_by_length(lengths)
    return build_layer_ordered_jobs(lengths, order, num_layers, billed_lengths=billed)


class TestPipelineJob:
    def test_invalid_lengths_rejected(self):
        with pytest.raises(ValueError):
            PipelineJob(sequence_id=0, layer=0, actual_length=0, billed_length=1)
        with pytest.raises(ValueError):
            PipelineJob(sequence_id=0, layer=0, actual_length=10, billed_length=5)


class TestSimulator:
    def test_empty_job_list(self, accelerator):
        timeline = simulate_coarse_pipeline(accelerator, [])
        assert timeline.makespan == 0

    def test_every_job_visits_every_stage(self, accelerator):
        jobs = _jobs([120, 80, 60])
        timeline = simulate_coarse_pipeline(accelerator, jobs)
        assert len(timeline) == len(jobs) * len(accelerator.stages)

    def test_stage_exclusivity(self, accelerator):
        jobs = _jobs([150, 100, 70, 50])
        timeline = simulate_coarse_pipeline(accelerator, jobs)
        assert timeline.verify_no_overlap_per_stage()

    def test_data_dependency_between_stages(self, accelerator):
        jobs = _jobs([120, 90])
        timeline = simulate_coarse_pipeline(accelerator, jobs)
        for seq in (0, 1):
            events = timeline.events_for_sequence(seq)
            for earlier, later in zip(events, events[1:]):
                assert later.start >= earlier.start

    def test_layer_dependency_respected(self, accelerator):
        jobs = _jobs([100])
        timeline = simulate_coarse_pipeline(accelerator, jobs)
        events = timeline.events_for_sequence(0)
        layer0_end = max(e.end for e in events if e.layer == 0)
        layer1_start = min(e.start for e in events if e.layer == 1)
        assert layer1_start >= layer0_end

    def test_pipelined_beats_sequential(self, accelerator):
        jobs = _jobs([150, 120, 90, 60])
        pipelined = simulate_coarse_pipeline(accelerator, jobs, pipelined=True)
        sequential = simulate_coarse_pipeline(accelerator, jobs, pipelined=False)
        assert pipelined.makespan < sequential.makespan

    def test_sequential_makespan_is_sum_of_all_stage_latencies(self, accelerator):
        jobs = _jobs([100, 80])
        sequential = simulate_coarse_pipeline(accelerator, jobs, pipelined=False, buffer_slots=None)
        expected = sum(
            sum(accelerator.stage_latencies(job.billed_length)) for job in jobs
        )
        assert sequential.makespan == expected

    def test_backpressure_never_speeds_things_up(self, accelerator):
        jobs = _jobs([150, 120, 90, 60])
        unconstrained = simulate_coarse_pipeline(accelerator, jobs, buffer_slots=None)
        constrained = simulate_coarse_pipeline(accelerator, jobs, buffer_slots=1)
        assert constrained.makespan >= unconstrained.makespan

    def test_barriers_drain_the_pipeline(self, accelerator):
        jobs = _jobs([150, 120, 90, 60])
        free = simulate_coarse_pipeline(accelerator, jobs)
        with_barrier = simulate_coarse_pipeline(accelerator, jobs, barriers={4})
        assert with_barrier.makespan >= free.makespan

    def test_billed_length_controls_latency(self, accelerator):
        lengths = [60, 60, 60]
        actual = simulate_coarse_pipeline(accelerator, _jobs(lengths))
        padded = simulate_coarse_pipeline(accelerator, _jobs(lengths, billed=[160, 160, 160]))
        assert padded.makespan > actual.makespan


class TestSimulatorProperties:
    @given(
        st.lists(st.integers(16, 160), min_size=1, max_size=6),
        st.integers(0, 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_makespan_at_least_critical_path_and_at_most_serial(self, lengths, pipelined_flag):
        """Any legal schedule sits between the critical path and full serialization."""
        accelerator = build_sparse_accelerator(_SMALL_MODEL, top_k=30, avg_seq=96, max_seq=160)
        jobs = _jobs(lengths)
        timeline = simulate_coarse_pipeline(accelerator, jobs, pipelined=bool(pipelined_flag))
        serial = sum(sum(accelerator.stage_latencies(j.billed_length)) for j in jobs)
        slowest_sequence = max(
            _SMALL_MODEL.num_layers * sum(accelerator.stage_latencies(length)) for length in lengths
        )
        assert slowest_sequence <= timeline.makespan <= serial
