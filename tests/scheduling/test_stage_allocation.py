"""Tests for Algorithm 1 (coarse-grained stage allocation)."""

from __future__ import annotations

import pytest

from repro.hardware.resources import FpgaResources, U280_SLR0
from repro.operators.encoder_graph import build_dense_encoder_graph, build_sparse_encoder_graph
from repro.operators.graph import OperatorGraph
from repro.scheduling.stage_allocation import allocate_stages, plan_to_accelerator
from repro.transformer.configs import BERT_BASE


@pytest.fixture(scope="module")
def sparse_graph():
    return build_sparse_encoder_graph(BERT_BASE, top_k=30)


@pytest.fixture(scope="module")
def sparse_plan(sparse_graph):
    return allocate_stages(sparse_graph, avg_seq=128)


class TestAlgorithm1:
    def test_every_operator_assigned_exactly_once(self, sparse_graph, sparse_plan):
        assigned = [name for stage in sparse_plan.stages for name in stage.operator_names]
        assert sorted(assigned) == sorted(op.name for op in sparse_graph.operators)

    def test_plan_fits_device(self, sparse_plan):
        assert sparse_plan.fits_capacity()

    def test_produces_multiple_coarse_stages(self, sparse_plan):
        assert sparse_plan.num_stages >= 2

    def test_priority_order_respected(self, sparse_graph, sparse_plan):
        # Operators are assigned in decreasing priority; therefore an
        # operator's stage index can never be smaller than that of a
        # higher-priority operator... stages are opened monotonically.
        priorities = sparse_graph.priorities(128)
        ordered = sorted(sparse_graph.operators, key=lambda op: priorities[op.name], reverse=True)
        stage_indices = [sparse_plan.stage_of(op.name) for op in ordered]
        assert stage_indices == sorted(stage_indices)

    def test_parallelism_rescaling_gives_heavier_operators_more_lanes(self, sparse_plan, sparse_graph):
        weights = sparse_graph.weights(128)
        for stage in sparse_plan.stages:
            matmuls = [
                name
                for name in stage.operator_names
                if sparse_graph.operator(name).kind == "matmul"
            ]
            if len(matmuls) < 2:
                continue
            heavy = max(matmuls, key=lambda n: weights[n])
            light = min(matmuls, key=lambda n: weights[n])
            if weights[heavy] > 4 * weights[light]:
                assert stage.parallelism[heavy] >= stage.parallelism[light]

    def test_scaling_fills_most_of_the_budget(self, sparse_plan):
        assert sparse_plan.total_resources().dsp > 0.3 * U280_SLR0.dsp

    def test_small_budget_creates_more_stages(self, sparse_graph):
        small_capacity = FpgaResources(dsp=64, bram=64, lut=40_000, ff=80_000)
        small_plan = allocate_stages(sparse_graph, avg_seq=128, capacity=small_capacity)
        large_plan = allocate_stages(sparse_graph, avg_seq=128)
        assert small_plan.num_stages >= large_plan.num_stages

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            allocate_stages(OperatorGraph(), avg_seq=128)

    def test_dense_graph_also_allocates(self):
        graph = build_dense_encoder_graph(BERT_BASE)
        plan = allocate_stages(graph, avg_seq=128)
        assert plan.fits_capacity()
        assert plan.num_stages >= 1

    def test_stage_work_reported(self, sparse_plan):
        work = sparse_plan.stage_work(128)
        assert len(work) == sparse_plan.num_stages
        assert all(w > 0 for w in work)

    def test_unknown_operator_lookup_raises(self, sparse_plan):
        with pytest.raises(KeyError):
            sparse_plan.stage_of("does_not_exist")


class TestPlanToAccelerator:
    def test_accelerator_built_from_plan(self, sparse_plan):
        accel = plan_to_accelerator(sparse_plan, BERT_BASE, max_seq=256, top_k=30)
        assert len(accel.stages) == sparse_plan.num_stages
        assert accel.layer_latency_cycles(128) > 0

    def test_accelerator_latency_monotone_in_length(self, sparse_plan):
        accel = plan_to_accelerator(sparse_plan, BERT_BASE, max_seq=256, top_k=30)
        assert accel.layer_latency_cycles(64) < accel.layer_latency_cycles(256)
