"""Equivalence tests: the vectorized engine vs the pure-Python reference oracle.

The fast path must reproduce the reference simulator *cycle-for-cycle* for
every configuration it claims to support: random length batches, replicated
stages, micro-batch barriers, the non-pipelined (drain) mode, and every
batch scheduler.  Where it cannot (finite buffer slots while pipelined), it
must fall back to the reference transparently.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.accelerator import build_sparse_accelerator
from repro.scheduling.baselines import (
    MicroBatchScheduler,
    PaddedScheduler,
    SequentialScheduler,
)
from repro.scheduling.fast_pipeline import (
    FastPathUnsupported,
    fast_path_supported,
    simulate_fast,
)
from repro.scheduling.length_aware import (
    LengthAwareScheduler,
    build_layer_ordered_jobs,
    sort_batch_by_length,
)
from repro.scheduling.pipeline import (
    LazyTimeline,
    pipeline_engine,
    simulate_coarse_pipeline,
    simulate_coarse_pipeline_reference,
)
from repro.transformer.configs import ModelConfig

_MODEL = ModelConfig(name="fastsim-3L", num_layers=3, hidden_dim=768, num_heads=12)
_DEEP_MODEL = ModelConfig(name="fastsim-12L", num_layers=12, hidden_dim=768, num_heads=12)


@pytest.fixture(scope="module")
def accelerator():
    return build_sparse_accelerator(_MODEL, top_k=30, avg_seq=96, max_seq=160)


@pytest.fixture(scope="module")
def replicated_accelerator():
    return build_sparse_accelerator(_MODEL, top_k=30, avg_seq=96, max_seq=160, replication=2)


def _jobs(lengths, num_layers=_MODEL.num_layers, billed=None):
    order = sort_batch_by_length(lengths)
    return build_layer_ordered_jobs(list(lengths), order, num_layers, billed_lengths=billed)


def _assert_equivalent(accelerator, jobs, **kwargs):
    reference = simulate_coarse_pipeline_reference(accelerator, jobs, **kwargs)
    fast = simulate_coarse_pipeline(accelerator, jobs, engine="fast", **kwargs)
    assert fast.makespan == reference.makespan
    assert fast.average_utilization() == reference.average_utilization()
    assert fast.total_bubble_cycles() == reference.total_bubble_cycles()
    assert len(fast) == len(reference)
    # Materializing the lazy timeline must reproduce the exact event list.
    assert fast.events == reference.events


class TestVectorizedEquivalence:
    @given(
        lengths=st.lists(st.integers(16, 160), min_size=1, max_size=7),
        num_layers=st.integers(1, 5),
        replicated=st.booleans(),
        pipelined=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_batches_match_reference_cycle_for_cycle(
        self, lengths, num_layers, replicated, pipelined
    ):
        accelerator = build_sparse_accelerator(
            _MODEL, top_k=30, avg_seq=96, max_seq=160, replication=2 if replicated else 1
        )
        jobs = _jobs(lengths, num_layers=num_layers)
        _assert_equivalent(
            accelerator, jobs, pipelined=pipelined, buffer_slots=None
        )

    @given(
        lengths=st.lists(st.integers(16, 160), min_size=2, max_size=6),
        barrier_seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_barriers_match_reference(self, lengths, barrier_seed):
        accelerator = build_sparse_accelerator(_MODEL, top_k=30, avg_seq=96, max_seq=160)
        jobs = _jobs(lengths)
        barriers = {1 + barrier_seed % (len(jobs) - 1)} if len(jobs) > 1 else set()
        _assert_equivalent(
            accelerator, jobs, pipelined=True, buffer_slots=None, barriers=barriers
        )

    def test_micro_batch_scheduler_matches_reference(self, replicated_accelerator):
        lengths = [150, 120, 90, 60, 45, 33, 100]
        for scheduler in (
            MicroBatchScheduler(micro_batch_size=2),
            MicroBatchScheduler(micro_batch_size=3),
        ):
            fast = scheduler.schedule(replicated_accelerator, lengths)
            ref = simulate_coarse_pipeline_reference(
                replicated_accelerator,
                _jobs_for(scheduler, replicated_accelerator, lengths),
                pipelined=True,
                buffer_slots=None,
                barriers=_barriers_for(scheduler, lengths),
            )
            assert fast.makespan_cycles == ref.makespan

    def test_every_scheduler_matches_reference_engine(self, replicated_accelerator, monkeypatch):
        lengths = [150, 120, 90, 60, 33, 45, 100]
        schedulers = (
            LengthAwareScheduler(),
            LengthAwareScheduler(sort_descending=False),
            MicroBatchScheduler(),
            SequentialScheduler(),
            SequentialScheduler(padded=True),
            PaddedScheduler(),
            PaddedScheduler(pad_to=200),
        )
        for scheduler in schedulers:
            fast = scheduler.schedule(replicated_accelerator, lengths)
            monkeypatch.setenv("REPRO_PIPELINE_ENGINE", "reference")
            ref = scheduler.schedule(replicated_accelerator, lengths)
            monkeypatch.delenv("REPRO_PIPELINE_ENGINE")
            assert fast.makespan_cycles == ref.makespan_cycles, scheduler.name
            assert fast.average_utilization == ref.average_utilization, scheduler.name
            assert (
                fast.sequence_completion_cycles() == ref.sequence_completion_cycles()
            ), scheduler.name
            assert fast.entry_admit_cycles() == ref.entry_admit_cycles(), scheduler.name
            assert fast.timeline.events == ref.timeline.events, scheduler.name

    def test_deep_model_exercises_steady_state_extrapolation(self):
        accelerator = build_sparse_accelerator(_DEEP_MODEL, top_k=30, avg_seq=96, max_seq=160)
        jobs = _jobs([140, 100, 82, 78, 72], num_layers=_DEEP_MODEL.num_layers)
        _assert_equivalent(accelerator, jobs, pipelined=True, buffer_slots=None)


def _jobs_for(scheduler, accelerator, lengths):
    """Rebuild the micro-batch scheduler's job list for the oracle run."""
    order = sort_batch_by_length(lengths)
    billed = list(lengths)
    for start in range(0, len(order), scheduler.micro_batch_size):
        group = order[start : start + scheduler.micro_batch_size]
        group_max = max(lengths[i] for i in group)
        for i in group:
            billed[i] = group_max
    return build_layer_ordered_jobs(
        lengths, order, accelerator.model_config.num_layers, billed_lengths=billed
    )


def _barriers_for(scheduler, lengths):
    order = sort_batch_by_length(lengths)
    micro_batch_of = {
        idx: position // scheduler.micro_batch_size
        for position, idx in enumerate(order)
    }
    jobs = build_layer_ordered_jobs(lengths, order, _MODEL.num_layers)
    return {
        j
        for j, job in enumerate(jobs)
        if j > 0
        and micro_batch_of[job.sequence_id] != micro_batch_of[jobs[j - 1].sequence_id]
    }


class TestEngineSelection:
    def test_env_selects_reference_engine(self, accelerator, monkeypatch):
        monkeypatch.setenv("REPRO_PIPELINE_ENGINE", "reference")
        assert pipeline_engine() == "reference"
        timeline = simulate_coarse_pipeline(accelerator, _jobs([100, 80]), buffer_slots=None)
        assert not isinstance(timeline, LazyTimeline)

    def test_default_engine_is_fast(self, accelerator, monkeypatch):
        monkeypatch.delenv("REPRO_PIPELINE_ENGINE", raising=False)
        assert pipeline_engine() == "fast"
        timeline = simulate_coarse_pipeline(accelerator, _jobs([100, 80]), buffer_slots=None)
        assert isinstance(timeline, LazyTimeline)

    def test_invalid_engine_rejected(self, accelerator, monkeypatch):
        monkeypatch.setenv("REPRO_PIPELINE_ENGINE", "warp-drive")
        with pytest.raises(ValueError, match="REPRO_PIPELINE_ENGINE"):
            simulate_coarse_pipeline(accelerator, _jobs([100]))
        monkeypatch.delenv("REPRO_PIPELINE_ENGINE")
        with pytest.raises(ValueError, match="engine"):
            simulate_coarse_pipeline(accelerator, _jobs([100]), engine="warp-drive")

    def test_finite_buffers_fall_back_to_reference(self, accelerator):
        jobs = _jobs([150, 120, 90, 60])
        assert not fast_path_supported(True, 2)
        with pytest.raises(FastPathUnsupported):
            simulate_fast(accelerator, jobs, pipelined=True, buffer_slots=2)
        # The public entry silently falls back and still answers correctly.
        fast = simulate_coarse_pipeline(accelerator, jobs, engine="fast", buffer_slots=2)
        ref = simulate_coarse_pipeline_reference(accelerator, jobs, buffer_slots=2)
        assert not isinstance(fast, LazyTimeline)
        assert fast.events == ref.events

    def test_non_pipelined_supported_for_any_buffers(self, accelerator):
        jobs = _jobs([150, 120, 90])
        assert fast_path_supported(False, 2)
        _assert_equivalent(accelerator, jobs, pipelined=False, buffer_slots=2)


class TestLazyTimeline:
    def test_hot_queries_answer_without_materializing(self, accelerator):
        timeline = simulate_coarse_pipeline(
            accelerator, _jobs([150, 120, 90]), engine="fast", buffer_slots=None
        )
        assert isinstance(timeline, LazyTimeline)
        assert timeline.makespan > 0
        assert 0.0 < timeline.average_utilization() <= 1.0
        assert timeline.total_bubble_cycles() >= 0
        assert timeline._cache is None  # no events were built
        assert len(timeline.events) == len(timeline)  # materializes on demand
        assert timeline._cache is not None
