"""Tests for the length-aware scheduler and the baseline schedulers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.accelerator import build_sparse_accelerator
from repro.scheduling.baselines import MicroBatchScheduler, PaddedScheduler, SequentialScheduler
from repro.scheduling.length_aware import LengthAwareScheduler, sort_batch_by_length
from repro.transformer.configs import ModelConfig

_SMALL_MODEL = ModelConfig(name="sched-2L", num_layers=2, hidden_dim=768, num_heads=12)
_LENGTHS = [140, 100, 82, 78, 72]


@pytest.fixture(scope="module")
def accelerator():
    return build_sparse_accelerator(_SMALL_MODEL, top_k=30, avg_seq=94, max_seq=160)


class TestSortBatch:
    def test_descending_order(self):
        assert sort_batch_by_length([10, 30, 20]) == [1, 2, 0]

    def test_ascending_order(self):
        assert sort_batch_by_length([10, 30, 20], descending=False) == [0, 2, 1]

    def test_ties_keep_original_order(self):
        assert sort_batch_by_length([5, 7, 5]) == [1, 0, 2]


class TestLengthAwareScheduler:
    def test_result_metadata(self, accelerator):
        result = LengthAwareScheduler().schedule(accelerator, _LENGTHS)
        assert result.scheduler == "length-aware"
        assert result.lengths == _LENGTHS
        assert result.billed_lengths == _LENGTHS
        assert result.num_layers == 2

    def test_high_stage_utilization(self, accelerator):
        # The headline claim of Section 4.2: stages run essentially bubble-free.
        result = LengthAwareScheduler().schedule(accelerator, _LENGTHS)
        assert result.average_utilization > 0.9

    def test_beats_padded_schedule(self, accelerator):
        length_aware = LengthAwareScheduler().schedule(accelerator, _LENGTHS)
        padded = PaddedScheduler().schedule(accelerator, _LENGTHS)
        assert length_aware.speedup_over(padded) > 1.2

    def test_beats_sequential_schedule(self, accelerator):
        length_aware = LengthAwareScheduler().schedule(accelerator, _LENGTHS)
        sequential = SequentialScheduler().schedule(accelerator, _LENGTHS)
        assert length_aware.speedup_over(sequential) > 1.5

    def test_uniform_lengths_have_no_bubbles(self, accelerator):
        result = LengthAwareScheduler().schedule(accelerator, [96] * 6)
        assert result.average_utilization > 0.95

    def test_empty_batch_rejected(self, accelerator):
        with pytest.raises(ValueError):
            LengthAwareScheduler().schedule(accelerator, [])

    def test_invalid_length_rejected(self, accelerator):
        with pytest.raises(ValueError):
            LengthAwareScheduler().schedule(accelerator, [10, 0])

    def test_throughput_reported(self, accelerator):
        result = LengthAwareScheduler().schedule(accelerator, _LENGTHS)
        assert result.throughput_sequences_per_second > 0
        assert result.makespan_seconds == pytest.approx(
            result.makespan_cycles / accelerator.clock_hz
        )


class TestPaddedScheduler:
    def test_bills_every_sequence_at_the_maximum(self, accelerator):
        result = PaddedScheduler().schedule(accelerator, _LENGTHS)
        assert result.billed_lengths == [140] * 5

    def test_explicit_pad_target(self, accelerator):
        result = PaddedScheduler(pad_to=160).schedule(accelerator, _LENGTHS)
        assert result.billed_lengths == [160] * 5

    def test_pad_target_smaller_than_batch_max_rejected(self, accelerator):
        with pytest.raises(ValueError):
            PaddedScheduler(pad_to=100).schedule(accelerator, _LENGTHS)

    def test_non_pipelined_mode_is_slower(self, accelerator):
        pipelined = PaddedScheduler(pipelined=True).schedule(accelerator, _LENGTHS)
        serial = PaddedScheduler(pipelined=False).schedule(accelerator, _LENGTHS)
        assert serial.makespan_cycles > pipelined.makespan_cycles

    def test_empty_batch_rejected(self, accelerator):
        with pytest.raises(ValueError):
            PaddedScheduler().schedule(accelerator, [])


class TestMicroBatchScheduler:
    def test_padding_is_per_micro_batch(self, accelerator):
        result = MicroBatchScheduler(micro_batch_size=2).schedule(accelerator, _LENGTHS)
        # Sorted: 140, 100 | 82, 78 | 72 -> billed 140, 140, 82, 82, 72.
        billed = {length: bill for length, bill in zip(result.lengths, result.billed_lengths)}
        assert billed[140] == 140
        assert billed[100] == 140
        assert billed[82] == 82
        assert billed[78] == 82
        assert billed[72] == 72

    def test_never_beats_length_aware_but_reduces_padded_work(self, accelerator):
        # Micro-batching reduces the padding overhead relative to full-batch
        # padding, yet its inter-micro-batch barriers drain the coarse
        # pipeline, so it never beats the length-aware schedule -- the FPGA
        # behaviour the paper criticizes in Section 2.
        length_aware = LengthAwareScheduler().schedule(accelerator, _LENGTHS)
        micro = MicroBatchScheduler(micro_batch_size=2).schedule(accelerator, _LENGTHS)
        padded = PaddedScheduler().schedule(accelerator, _LENGTHS)
        assert micro.makespan_cycles >= length_aware.makespan_cycles
        assert sum(micro.billed_lengths) < sum(padded.billed_lengths)

    def test_micro_batch_of_one_bills_actual_lengths(self, accelerator):
        result = MicroBatchScheduler(micro_batch_size=1).schedule(accelerator, _LENGTHS)
        assert sorted(result.billed_lengths) == sorted(_LENGTHS)

    def test_invalid_micro_batch_size_rejected(self):
        with pytest.raises(ValueError):
            MicroBatchScheduler(micro_batch_size=0)

    def test_barriers_create_bubbles(self, accelerator):
        length_aware = LengthAwareScheduler().schedule(accelerator, _LENGTHS)
        micro = MicroBatchScheduler(micro_batch_size=2).schedule(accelerator, _LENGTHS)
        assert micro.total_bubble_cycles >= length_aware.total_bubble_cycles


class TestSequentialScheduler:
    def test_padded_variant_is_slowest(self, accelerator):
        plain = SequentialScheduler().schedule(accelerator, _LENGTHS)
        padded = SequentialScheduler(padded=True).schedule(accelerator, _LENGTHS)
        assert padded.makespan_cycles > plain.makespan_cycles
        assert padded.scheduler.endswith("-padded")


class TestSchedulerProperties:
    @given(st.lists(st.integers(16, 160), min_size=1, max_size=6))
    @settings(max_examples=15, deadline=None)
    def test_length_aware_never_slower_than_padded(self, lengths):
        """Billing actual lengths can only reduce work, never increase it."""
        accelerator = build_sparse_accelerator(_SMALL_MODEL, top_k=30, avg_seq=96, max_seq=160)
        length_aware = LengthAwareScheduler().schedule(accelerator, lengths)
        padded = PaddedScheduler().schedule(accelerator, lengths)
        assert length_aware.makespan_cycles <= padded.makespan_cycles
