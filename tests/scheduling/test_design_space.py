"""Tests for pipeline replication and the design-space exploration."""

from __future__ import annotations

import pytest

from repro.hardware.accelerator import build_sparse_accelerator
from repro.scheduling.design_space import best_design_point, explore_design_space
from repro.scheduling.length_aware import LengthAwareScheduler
from repro.transformer.configs import MRPC, ModelConfig

_SMALL_MODEL = ModelConfig(name="dse-2L", num_layers=2, hidden_dim=768, num_heads=12)
_LENGTHS = [86, 80, 72, 64, 60, 55, 52, 48, 44, 40, 36, 32]


class TestReplication:
    def test_replicated_design_fits_and_halves_per_replica_resources(self):
        single = build_sparse_accelerator(_SMALL_MODEL, avg_seq=53, max_seq=86, replication=1)
        double = build_sparse_accelerator(_SMALL_MODEL, avg_seq=53, max_seq=86, replication=2)
        assert double.fits_capacity()
        assert double.stages[0].replication == 2
        # Each replica is built against roughly half the device.
        assert double.stages[0].resources().dsp < single.stages[0].resources().dsp

    def test_invalid_replication_rejected(self):
        with pytest.raises(ValueError):
            build_sparse_accelerator(_SMALL_MODEL, avg_seq=53, max_seq=86, replication=0)

    def test_replicated_stages_overlap_in_the_schedule(self):
        double = build_sparse_accelerator(_SMALL_MODEL, avg_seq=53, max_seq=86, replication=2)
        result = LengthAwareScheduler().schedule(double, _LENGTHS)
        # Replica labels appear in the timeline and each replica has no overlap.
        stage_names = result.timeline.stage_names()
        assert any("[0]" in name for name in stage_names)
        assert any("[1]" in name for name in stage_names)
        assert result.timeline.verify_no_overlap_per_stage()

    def test_replication_does_not_break_total_work(self):
        single = build_sparse_accelerator(_SMALL_MODEL, avg_seq=53, max_seq=86, replication=1)
        double = build_sparse_accelerator(_SMALL_MODEL, avg_seq=53, max_seq=86, replication=2)
        scheduler = LengthAwareScheduler()
        single_result = scheduler.schedule(single, _LENGTHS)
        double_result = scheduler.schedule(double, _LENGTHS)
        # Two half-sized replicas should land within ~2x of the single design
        # either way (they trade per-sequence latency for concurrency).
        ratio = double_result.makespan_cycles / single_result.makespan_cycles
        assert 0.5 < ratio < 2.0


class TestDesignSpaceExploration:
    def test_returns_ranked_feasible_points(self):
        points = explore_design_space(
            _SMALL_MODEL,
            MRPC,
            _LENGTHS,
            top_k_candidates=(30,),
            replication_candidates=(1, 2),
        )
        assert len(points) == 2
        throughputs = [p.throughput_sequences_per_second for p in points]
        assert throughputs == sorted(throughputs, reverse=True)

    def test_best_point_is_first(self):
        best = best_design_point(
            _SMALL_MODEL,
            MRPC,
            _LENGTHS,
            top_k_candidates=(30,),
            replication_candidates=(1, 2),
        )
        assert best.replication in (1, 2)
        assert best.throughput_sequences_per_second > 0

    def test_rows_are_serializable(self):
        points = explore_design_space(
            _SMALL_MODEL,
            MRPC,
            _LENGTHS,
            top_k_candidates=(20, 30),
            replication_candidates=(1,),
        )
        rows = [p.as_row() for p in points]
        assert {"top_k", "replication", "throughput_seq_per_s"} <= set(rows[0])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            explore_design_space(_SMALL_MODEL, MRPC, [])
