"""Tests for the pipeline timeline data structure."""

from __future__ import annotations

import pytest

from repro.scheduling.timeline import Timeline, TimelineEvent


def _event(seq, layer, stage, start, end, length=10):
    return TimelineEvent(
        sequence_id=seq, layer=layer, stage=stage, start=start, end=end, length=length
    )


@pytest.fixture()
def simple_timeline() -> Timeline:
    timeline = Timeline()
    # Two sequences through two stages, perfectly packed in stage order.
    timeline.extend(
        [
            _event(0, 0, "S1", 0, 10),
            _event(0, 0, "S2", 10, 22),
            _event(1, 0, "S1", 10, 18),
            _event(1, 0, "S2", 22, 30),
        ]
    )
    return timeline


class TestTimeline:
    def test_makespan(self, simple_timeline):
        assert simple_timeline.makespan == 30

    def test_empty_timeline(self):
        timeline = Timeline()
        assert timeline.makespan == 0
        assert timeline.average_utilization() == 0.0
        assert len(timeline) == 0

    def test_event_validation(self):
        with pytest.raises(ValueError):
            _event(0, 0, "S1", 10, 5)

    def test_events_for_stage_sorted(self, simple_timeline):
        events = simple_timeline.events_for_stage("S1")
        assert [e.sequence_id for e in events] == [0, 1]

    def test_events_for_sequence(self, simple_timeline):
        events = simple_timeline.events_for_sequence(0)
        assert [e.stage for e in events] == ["S1", "S2"]

    def test_stage_names_in_first_appearance_order(self, simple_timeline):
        assert simple_timeline.stage_names() == ["S1", "S2"]

    def test_stage_occupancy_busy_and_bubbles(self, simple_timeline):
        occupancy = simple_timeline.stage_occupancy()
        s1 = occupancy["S1"]
        assert s1.busy_cycles == 18
        assert s1.active_span == 18
        assert s1.bubble_cycles == 0
        assert s1.utilization == pytest.approx(1.0)
        s2 = occupancy["S2"]
        assert s2.busy_cycles == 20
        assert s2.bubble_cycles == 0

    def test_bubble_detection(self):
        timeline = Timeline()
        timeline.extend([_event(0, 0, "S1", 0, 10), _event(1, 0, "S1", 15, 25)])
        occ = timeline.stage_occupancy()["S1"]
        assert occ.bubble_cycles == 5
        assert occ.utilization == pytest.approx(20 / 25)
        assert timeline.total_bubble_cycles() == 5

    def test_sequence_latency(self, simple_timeline):
        assert simple_timeline.sequence_latency(0) == 22
        assert simple_timeline.sequence_latency(1) == 20
        assert simple_timeline.sequence_latency(42) == 0

    def test_overlap_detection(self):
        timeline = Timeline()
        timeline.extend([_event(0, 0, "S1", 0, 10), _event(1, 0, "S1", 5, 12)])
        assert not timeline.verify_no_overlap_per_stage()

    def test_no_overlap_confirmed(self, simple_timeline):
        assert simple_timeline.verify_no_overlap_per_stage()

    def test_total_busy_cycles(self, simple_timeline):
        assert simple_timeline.total_busy_cycles() == 10 + 12 + 8 + 8

    def test_as_rows_sorted_by_start(self, simple_timeline):
        rows = simple_timeline.as_rows()
        assert len(rows) == 4
        starts = [row["start"] for row in rows]
        assert starts == sorted(starts)
