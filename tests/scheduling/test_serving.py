"""Tests for the batch-serving simulation."""

from __future__ import annotations

import pytest

from repro.hardware.accelerator import build_sparse_accelerator
from repro.scheduling.baselines import PaddedScheduler
from repro.scheduling.serving import simulate_serving
from repro.transformer.configs import MRPC, RTE, ModelConfig

_SMALL_MODEL = ModelConfig(name="serve-2L", num_layers=2, hidden_dim=768, num_heads=12)


@pytest.fixture(scope="module")
def accelerator():
    return build_sparse_accelerator(_SMALL_MODEL, top_k=30, avg_seq=53, max_seq=86)


class TestServingSimulation:
    def test_serves_every_request(self, accelerator):
        report = simulate_serving(accelerator, MRPC, num_requests=48, batch_size=16)
        assert report.num_requests == 48
        assert len(report.sequence_latencies_seconds) == 48
        assert len(report.batch_results) == 3

    def test_throughput_and_latency_are_positive(self, accelerator):
        report = simulate_serving(accelerator, MRPC, num_requests=32, batch_size=16)
        assert report.throughput_sequences_per_second > 0
        assert report.latency_percentile(50) > 0
        assert report.latency_percentile(99) >= report.latency_percentile(50)

    def test_summary_row_fields(self, accelerator):
        row = simulate_serving(accelerator, MRPC, num_requests=32).as_row()
        assert {"throughput_seq_per_s", "p50_latency_ms", "p99_latency_ms"} <= set(row)

    def test_length_aware_serving_beats_padded_serving(self, accelerator):
        rte_accel = build_sparse_accelerator(_SMALL_MODEL, top_k=30, avg_seq=68, max_seq=253)
        ours = simulate_serving(rte_accel, RTE, num_requests=64, batch_size=16)
        padded = simulate_serving(
            rte_accel, RTE, num_requests=64, batch_size=16, scheduler=PaddedScheduler()
        )
        assert ours.throughput_sequences_per_second > padded.throughput_sequences_per_second

    def test_global_sorting_helps_or_ties(self, accelerator):
        rte_accel = build_sparse_accelerator(_SMALL_MODEL, top_k=30, avg_seq=68, max_seq=253)
        bucketed = simulate_serving(rte_accel, RTE, num_requests=64, sort_globally=True)
        unbucketed = simulate_serving(rte_accel, RTE, num_requests=64, sort_globally=False)
        assert (
            bucketed.throughput_sequences_per_second
            >= 0.95 * unbucketed.throughput_sequences_per_second
        )

    def test_invalid_request_count_rejected(self, accelerator):
        with pytest.raises(ValueError):
            simulate_serving(accelerator, MRPC, num_requests=0)

    def test_high_utilization_maintained_across_batches(self, accelerator):
        report = simulate_serving(accelerator, MRPC, num_requests=64, batch_size=16)
        assert report.average_utilization > 0.9
