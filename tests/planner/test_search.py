"""Unit tests of the planner's search machinery (no simulation runs)."""

from __future__ import annotations

import json

import pytest

from repro.planner import (
    CandidateResult,
    enumerate_compositions,
    fleet_price_per_hour,
    pareto_frontier,
    reference_trace_path,
)
from repro.planner.search import _is_strict_superset, load_trace


class TestEnumeration:
    def test_counts_and_bounds(self):
        compositions = enumerate_compositions(3, max_per_type=2, max_total=3)
        assert len(compositions) == 16  # 3^3 - empty - ten over-budget vectors
        assert all(1 <= sum(c) <= 3 for c in compositions)
        assert all(max(c) <= 2 for c in compositions)
        assert len(set(compositions)) == len(compositions)

    def test_single_type(self):
        assert enumerate_compositions(1, max_per_type=4, max_total=2) == [(1,), (2,)]

    def test_total_cap_binds(self):
        compositions = enumerate_compositions(2, max_per_type=5, max_total=1)
        assert sorted(compositions) == [(0, 1), (1, 0)]

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            enumerate_compositions(0, 1, 1)
        with pytest.raises(ValueError):
            enumerate_compositions(2, 0, 1)
        with pytest.raises(ValueError):
            enumerate_compositions(2, 1, 0)


class TestPriceMath:
    # Hand-computed against the catalog defaults: sparse-fpga $1.65/hr,
    # gpu-rtx6000 $1.25/hr, cpu-xeon $0.45/hr.
    PRICES = (1.65, 1.25, 0.45)

    def test_hand_computed_rates(self):
        assert fleet_price_per_hour((1, 0, 0), self.PRICES) == pytest.approx(1.65)
        assert fleet_price_per_hour((0, 2, 0), self.PRICES) == pytest.approx(2.50)
        assert fleet_price_per_hour((1, 2, 0), self.PRICES) == pytest.approx(4.15)
        assert fleet_price_per_hour((1, 1, 1), self.PRICES) == pytest.approx(3.35)
        assert fleet_price_per_hour((0, 0, 0), self.PRICES) == 0.0

    def test_price_order_is_search_order(self):
        compositions = enumerate_compositions(3, 2, 3)
        ordered = sorted(
            compositions, key=lambda c: (fleet_price_per_hour(c, self.PRICES), c)
        )
        rates = [fleet_price_per_hour(c, self.PRICES) for c in ordered]
        assert rates == sorted(rates)
        assert ordered[0] == (0, 0, 1)  # one cpu-xeon is the cheapest fleet


class TestSupersetPruning:
    def test_strict_superset(self):
        assert _is_strict_superset((1, 2, 0), (0, 2, 0))
        assert _is_strict_superset((1, 1, 1), (1, 1, 0))
        assert not _is_strict_superset((0, 2, 0), (0, 2, 0))  # not strict
        assert not _is_strict_superset((2, 0, 0), (0, 1, 0))  # not a superset


def _candidate(price, attainment, energy):
    return CandidateResult(
        devices=("a",),
        counts=(1,),
        price_per_hour_usd=price,
        attainment=attainment,
        joules_per_mreq=energy,
        evaluated=True,
    )


class TestParetoFrontier:
    def test_dominated_point_dropped(self):
        cheap_good = _candidate(1.0, 0.9, 100.0)
        dear_worse = _candidate(2.0, 0.8, 200.0)  # worse on all three axes
        frontier = pareto_frontier([cheap_good, dear_worse])
        assert frontier == [cheap_good]

    def test_three_axis_tradeoff_all_kept(self):
        cheapest = _candidate(1.0, 0.5, 300.0)
        most_on_time = _candidate(3.0, 1.0, 300.0)
        greenest = _candidate(2.0, 0.5, 50.0)
        frontier = pareto_frontier([cheapest, most_on_time, greenest])
        assert frontier == [cheapest, most_on_time, greenest]

    def test_missing_metrics_count_as_worst(self):
        measured = _candidate(1.0, 0.9, 100.0)
        unmetered = _candidate(1.0, 0.9, None)
        no_deadlines = _candidate(1.0, None, 100.0)
        frontier = pareto_frontier([measured, unmetered, no_deadlines])
        assert frontier == [measured]


class TestReferenceTrace:
    def test_checked_in_and_loadable(self):
        path = reference_trace_path()
        assert path.is_file()
        trace = load_trace(path)
        assert len(trace) == 300
        times = [t for t, _ in trace]
        assert times == sorted(times)
        assert all(length >= 1 for _, length in trace)

    def test_load_trace_plain_times(self, tmp_path):
        path = tmp_path / "times.json"
        path.write_text(json.dumps([0.0, 0.5, 1.0]))
        assert load_trace(path) == (0.0, 0.5, 1.0)

    def test_load_trace_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("[]")
        with pytest.raises(ValueError):
            load_trace(path)
