"""End-to-end tests of the ``plan`` experiment on the reference trace."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import run_report
from repro.experiments.spec import run_experiment
from repro.planner import PlanConfig, fleet_price_per_hour

_REPO_ROOT = Path(__file__).resolve().parents[2]
_REFERENCE_FRONTIER = _REPO_ROOT / "benchmarks" / "results" / "planner_pareto.json"


@pytest.fixture(scope="module")
def reference_plan():
    """One search of the checked-in reference trace, shared across tests."""
    return run_experiment("plan")


class TestReferencePlan:
    def test_chosen_is_cheapest_feasible(self, reference_plan):
        search = reference_plan.search
        chosen = search.chosen
        assert chosen is not None
        assert chosen.meets_target
        assert chosen.attainment >= 0.95
        # Cheapest: every evaluated candidate that costs less missed the target.
        for candidate in search.candidates:
            if candidate.price_per_hour_usd < chosen.price_per_hour_usd:
                assert not candidate.meets_target
        # Ordering puts the winner first among feasible candidates.
        feasible = [c for c in search.candidates if c.meets_target]
        assert feasible[0] is chosen

    def test_reference_trace_picks_two_rtx6000(self, reference_plan):
        # Pinned outcome on the checked-in trace: one RTX 6000 tops out at
        # ~51% attainment during the diurnal peak, two clear 95%, and every
        # cheaper composition (xeons, single FPGA) falls short.
        assert reference_plan.search.chosen.fleet == "2x gpu-rtx6000"
        assert reference_plan.search.chosen.price_per_hour_usd == pytest.approx(2.50)

    def test_pruned_are_supersets_of_feasible(self, reference_plan):
        search = reference_plan.search
        assert search.pruned, "the default search should prune something"
        feasible = {c.counts for c in search.candidates if c.meets_target}
        for candidate in search.pruned:
            assert not candidate.evaluated
            assert candidate.pruned_by in feasible
            assert all(
                mine >= base
                for mine, base in zip(candidate.counts, candidate.pruned_by)
            )
            # Pruning is exact for the objective: a superset always costs more.
            assert candidate.price_per_hour_usd > fleet_price_per_hour(
                candidate.pruned_by, search.device_prices
            )

    def test_bookkeeping_adds_up(self, reference_plan):
        search = reference_plan.search
        assert search.num_enumerated == len(search.candidates) + len(search.pruned)
        assert reference_plan.num_requests == 300

    def test_energy_frontier_includes_fpga_fleet(self, reference_plan):
        # The three-axis frontier is the point of the report: the cheapest
        # feasible fleet is GPU-based, but the paper's sparse FPGA buys the
        # lowest J/Mreq at a higher price -- both must survive domination.
        frontier_fleets = {c.fleet for c in reference_plan.search.frontier}
        assert "2x gpu-rtx6000" in frontier_fleets
        assert "2x sparse-fpga" in frontier_fleets

    def test_frontier_matches_checked_in_reference(self, reference_plan):
        reference = json.loads(_REFERENCE_FRONTIER.read_text())
        frontier = [c.to_dict() for c in reference_plan.search.frontier]
        assert frontier == reference["pareto_frontier"]
        assert reference_plan.search.chosen.to_dict() == reference["chosen"]


class TestJobsDeterminism:
    def test_parallel_plan_is_byte_identical(self):
        serial = run_report("plan", {"jobs": 1})
        parallel = run_report("plan", {"jobs": 4})
        # The config payload records the jobs knob; the plan itself -- chosen
        # fleet, candidate metrics, frontier -- must be byte-identical.
        assert json.dumps(serial.payload["result"], indent=2) == json.dumps(
            parallel.payload["result"], indent=2
        )
        assert serial.payload["config"]["jobs"] == 1
        assert parallel.payload["config"]["jobs"] == 4


class TestPruningKnob:
    def test_prune_off_evaluates_everything(self):
        result = run_experiment("plan", prune=False, max_per_type=1, max_total=2)
        assert not result.search.pruned
        assert len(result.search.candidates) == result.search.num_enumerated

    def test_prune_never_changes_the_winner(self):
        kwargs = {"max_per_type": 1, "max_total": 2}
        pruned = run_experiment("plan", prune=True, **kwargs)
        full = run_experiment("plan", prune=False, **kwargs)
        assert pruned.search.chosen.to_dict() == full.search.chosen.to_dict()


class TestGeneratedWorkloads:
    def test_rate_driven_arrival_builds_a_plan(self):
        result = run_experiment(
            "plan",
            arrival="poisson",
            qps=40.0,
            requests=64,
            devices=("gpu-rtx6000",),
            max_per_type=2,
            max_total=2,
        )
        assert result.trace_source == "poisson@40qps"
        assert result.search.num_enumerated == 2

    def test_rate_driven_arrival_requires_qps_and_requests(self):
        with pytest.raises(ValueError, match="qps"):
            PlanConfig(arrival="poisson").validate()
        with pytest.raises(ValueError, match="requests"):
            PlanConfig(arrival="poisson", qps=50.0).validate()


class TestConfigValidation:
    def test_rejects_unknown_device(self):
        with pytest.raises(ValueError):
            PlanConfig(devices=("no-such-device",)).validate()

    def test_rejects_duplicate_catalog_entry(self):
        with pytest.raises(ValueError, match="repeat"):
            PlanConfig(devices=("sparse-fpga", "sparse-fpga")).validate()

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            PlanConfig(attainment_target=0.0).validate()
        with pytest.raises(ValueError):
            PlanConfig(attainment_target=1.5).validate()

    def test_rejects_deadline_free_plan(self):
        with pytest.raises(ValueError, match="slo_ms"):
            PlanConfig(slo_ms=0.0).validate()

    def test_rejects_unpriced_catalog(self):
        # An unpriced device would make "cheapest" meaningless and break the
        # pruning argument; the search refuses to rank such a catalog.
        from repro.devices import Device
        from repro.planner.search import _catalog_prices
        from repro.registry import REGISTRY

        class _Free(Device):
            name = "tiny-free"
            backend = "test"

            def __init__(self, model="bert-base", dataset="mrpc"):
                super().__init__()

        if "tiny-free" not in REGISTRY.available("device"):
            REGISTRY.add("device", "tiny-free", lambda **kw: _Free(**kw))
        with pytest.raises(ValueError, match="price"):
            _catalog_prices(
                {"devices": ("tiny-free",), "model": "bert-base", "dataset": "mrpc"}
            )
