"""Dollar-cost and energy accounting behind the planner's rankings."""

from __future__ import annotations

import pytest

from repro.devices import DEFAULT_DEVICE_PRICES_USD_PER_HOUR, build_device, build_fleet
from repro.serving import ClosedLoopArrivals, FixedSizeBatcher, simulate_online


def _drain(fleet, num_requests=24):
    return simulate_online(
        fleet,
        "mrpc",
        arrivals=ClosedLoopArrivals(sort_by_length=True),
        num_requests=num_requests,
        batch_policy=FixedSizeBatcher(batch_size=8),
        seed=3,
    )


class TestStaticFleetCostMath:
    def test_cost_is_price_times_makespan_hand_computed(self):
        # Pin the cost formula with explicit prices: a static fleet bills
        # every device for the whole makespan, so
        # cost = (p1 + p2) * makespan / 3600 exactly.
        fleet = build_fleet(
            ["sparse-fpga", "gpu-rtx6000"],
            dataset="mrpc",
            price_per_hour_usd=None,  # overridden per-device below
        )
        fleet[0].price_per_hour_usd = 1.80
        fleet[1].price_per_hour_usd = 1.20
        report = _drain(fleet)
        expected = (1.80 + 1.20) * report.makespan_seconds / 3600.0
        assert report.cost_usd == pytest.approx(expected, rel=1e-12)
        assert report.average_price_per_hour_usd == pytest.approx(3.00)

    def test_catalog_defaults_price_every_device(self):
        for name, expected in DEFAULT_DEVICE_PRICES_USD_PER_HOUR.items():
            device = build_device(name, dataset="mrpc")
            assert device.price_per_hour_usd == pytest.approx(expected)
            assert device.describe()["price_per_hour_usd"] == pytest.approx(expected)

    def test_price_override_reaches_the_report(self):
        fleet = build_fleet(["sparse-fpga"], dataset="mrpc", price_per_hour_usd=9.99)
        report = _drain(fleet, num_requests=8)
        assert report.devices[0].price_per_hour_usd == pytest.approx(9.99)
        assert report.average_price_per_hour_usd == pytest.approx(9.99)
        payload = report.to_dict()
        assert payload["devices"][0]["price_per_hour_usd"] == pytest.approx(9.99)
        assert payload["cost_usd"] == pytest.approx(report.cost_usd)

    def test_unpriced_fleet_reports_no_cost(self):
        fleet = build_fleet(["sparse-fpga"], dataset="mrpc", price_per_hour_usd=None)
        fleet[0].price_per_hour_usd = None
        report = _drain(fleet, num_requests=8)
        assert report.cost_usd is None
        assert report.average_price_per_hour_usd is None
        assert report.attainment_per_dollar_hour is None

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            build_device("sparse-fpga", dataset="mrpc", price_per_hour_usd=-0.01)


class TestEnergyPerMillionRequests:
    def test_j_per_mreq_hand_computed(self):
        fleet = build_fleet(["sparse-fpga"], dataset="mrpc")
        report = _drain(fleet)
        expected = report.total_energy_joules / report.num_completed * 1e6
        assert report.joules_per_million_requests == pytest.approx(expected)

    def test_heterogeneous_fleet_energy_sums_per_device(self):
        fleet = build_fleet(
            ["sparse-fpga", "gpu-rtx6000", "cpu-xeon"], dataset="mrpc"
        )
        report = _drain(fleet)
        per_device = [
            d.energy_joules for d in report.devices if d.energy_joules is not None
        ]
        assert len(per_device) == 3
        assert sum(per_device) == pytest.approx(report.total_energy_joules)
