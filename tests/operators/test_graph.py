"""Tests for the operator DAG data structure and Eq. 1 priorities."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators.graph import Operator, OperatorGraph


def _linear_op(name: str, weight: int) -> Operator:
    return Operator(name, "matmul", lambda s, w=weight: w * s)


def _chain_graph(weights: list[int]) -> OperatorGraph:
    graph = OperatorGraph()
    names = [f"op{i}" for i in range(len(weights))]
    for name, weight in zip(names, weights):
        graph.add_operator(_linear_op(name, weight))
    graph.add_chain(names)
    return graph


class TestGraphConstruction:
    def test_duplicate_operator_rejected(self):
        graph = OperatorGraph()
        graph.add_operator(_linear_op("a", 1))
        with pytest.raises(ValueError):
            graph.add_operator(_linear_op("a", 2))

    def test_edge_with_unknown_vertex_rejected(self):
        graph = OperatorGraph()
        graph.add_operator(_linear_op("a", 1))
        with pytest.raises(KeyError):
            graph.add_edge("a", "b")

    def test_duplicate_edges_are_ignored(self):
        graph = _chain_graph([1, 2])
        graph.add_edge("op0", "op1")
        assert len(graph.edges) == 1

    def test_contains_and_len(self):
        graph = _chain_graph([1, 2, 3])
        assert len(graph) == 3
        assert "op1" in graph
        assert "missing" not in graph

    def test_sources_and_sinks(self):
        graph = _chain_graph([1, 2, 3])
        assert [op.name for op in graph.sources()] == ["op0"]
        assert [op.name for op in graph.sinks()] == ["op2"]

    def test_successors_predecessors(self):
        graph = _chain_graph([1, 2, 3])
        assert [op.name for op in graph.successors("op0")] == ["op1"]
        assert [op.name for op in graph.predecessors("op2")] == ["op1"]


class TestGraphAlgorithms:
    def test_topological_order_respects_edges(self):
        graph = _chain_graph([1, 2, 3, 4])
        order = [op.name for op in graph.topological_order()]
        assert order == ["op0", "op1", "op2", "op3"]

    def test_cycle_detection(self):
        graph = _chain_graph([1, 2])
        graph.add_edge("op1", "op0")
        with pytest.raises(ValueError):
            graph.topological_order()

    def test_weights_scale_with_sequence_length(self):
        graph = _chain_graph([3, 5])
        assert graph.weights(10) == {"op0": 30, "op1": 50}
        assert graph.total_work(10) == 80

    def test_chain_priorities_follow_eq1(self):
        # P(v) = W(v) + max over successors, with P(sink) = W(sink).
        graph = _chain_graph([1, 2, 3])
        priorities = graph.priorities(10)
        assert priorities == {"op2": 30, "op1": 50, "op0": 60}

    def test_branching_priorities_take_maximum_successor(self):
        graph = OperatorGraph()
        for name, weight in (("root", 1), ("light", 2), ("heavy", 10), ("sink", 1)):
            graph.add_operator(_linear_op(name, weight))
        graph.add_edge("root", "light")
        graph.add_edge("root", "heavy")
        graph.add_edge("light", "sink")
        graph.add_edge("heavy", "sink")
        priorities = graph.priorities(1)
        assert priorities["root"] == 1 + max(priorities["light"], priorities["heavy"])
        assert priorities["heavy"] == 11

    def test_critical_path_work(self):
        graph = _chain_graph([1, 2, 3])
        assert graph.critical_path_work(10) == 60

    def test_subgraph_induces_edges(self):
        graph = _chain_graph([1, 2, 3])
        sub = graph.subgraph(["op0", "op1"])
        assert len(sub) == 2
        assert sub.edges == [("op0", "op1")]

    def test_operator_traffic_defaults_to_zero(self):
        op = _linear_op("a", 1)
        assert op.traffic(100) == 0

    def test_operator_traffic_uses_bytes_fn(self):
        op = Operator("a", "matmul", lambda s: s, bytes_moved=lambda s: 7 * s)
        assert op.traffic(3) == 21


class TestGraphProperties:
    @given(st.lists(st.integers(1, 100), min_size=2, max_size=10), st.integers(1, 500))
    @settings(max_examples=50, deadline=None)
    def test_source_priority_equals_total_chain_work(self, weights, seq):
        """For a chain, the source's priority is the whole critical path."""
        graph = _chain_graph(weights)
        priorities = graph.priorities(seq)
        assert priorities["op0"] == sum(w * seq for w in weights)

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=8), st.integers(1, 100))
    @settings(max_examples=50, deadline=None)
    def test_priorities_decrease_along_a_chain(self, weights, seq):
        graph = _chain_graph(weights)
        priorities = graph.priorities(seq)
        values = [priorities[f"op{i}"] for i in range(len(weights))]
        assert values == sorted(values, reverse=True)
