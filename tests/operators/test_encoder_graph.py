"""Tests for the concrete encoder operator graphs."""

from __future__ import annotations

import pytest

from repro.operators.encoder_graph import (
    STAGE1_OPERATORS,
    STAGE2_OPERATORS,
    STAGE3_OPERATORS,
    build_dense_encoder_graph,
    build_sparse_encoder_graph,
)
from repro.transformer.configs import BERT_BASE


class TestDenseGraph:
    def test_is_a_connected_chain(self):
        graph = build_dense_encoder_graph(BERT_BASE)
        assert len(graph.sources()) == 1
        assert len(graph.sinks()) == 1
        graph.topological_order()  # must not raise

    def test_contains_standard_encoder_operators(self):
        graph = build_dense_encoder_graph(BERT_BASE)
        for name in ("qkv_linear", "attention_scores", "softmax", "ffn_linear1", "ffn_layernorm"):
            assert name in graph

    def test_attention_scores_scale_quadratically(self):
        graph = build_dense_encoder_graph(BERT_BASE)
        op = graph.operator("attention_scores")
        assert op.weight(256) == pytest.approx(4 * op.weight(128))

    def test_ffn_scales_linearly(self):
        graph = build_dense_encoder_graph(BERT_BASE)
        op = graph.operator("ffn_linear1")
        assert op.weight(256) == 2 * op.weight(128)


class TestSparseGraph:
    def test_contains_pre_selection_operators(self):
        graph = build_sparse_encoder_graph(BERT_BASE, top_k=30)
        for name in ("qk_quantize", "approx_scores", "topk_select", "candidate_load"):
            assert name in graph

    def test_stage_groups_cover_all_operators(self):
        graph = build_sparse_encoder_graph(BERT_BASE, top_k=30)
        grouped = set(STAGE1_OPERATORS) | set(STAGE2_OPERATORS) | set(STAGE3_OPERATORS)
        assert {op.name for op in graph.operators} == grouped

    def test_exact_attention_work_is_linear_in_sequence_length(self):
        graph = build_sparse_encoder_graph(BERT_BASE, top_k=30)
        op = graph.operator("sparse_scores_exp")
        assert op.weight(800) == pytest.approx(2 * op.weight(400), rel=0.02)

    def test_exact_attention_work_saturates_for_short_sequences(self):
        # For sequences shorter than k the effective k equals the length.
        graph = build_sparse_encoder_graph(BERT_BASE, top_k=30)
        op = graph.operator("sparse_scores_exp")
        assert op.weight(10) < op.weight(30)

    def test_sparse_total_work_below_dense_at_long_lengths(self):
        dense = build_dense_encoder_graph(BERT_BASE)
        sparse = build_sparse_encoder_graph(BERT_BASE, top_k=30)
        assert sparse.total_work(512) < dense.total_work(512)

    def test_approx_scores_run_on_lut_fabric(self):
        graph = build_sparse_encoder_graph(BERT_BASE, top_k=30)
        assert graph.operator("approx_scores").kind == "lut"

    def test_priorities_put_stage1_before_stage3(self):
        graph = build_sparse_encoder_graph(BERT_BASE, top_k=30)
        priorities = graph.priorities(128)
        assert priorities["qkv_linear"] > priorities["ffn_layernorm"]

    def test_candidate_load_moves_offchip_bytes(self):
        graph = build_sparse_encoder_graph(BERT_BASE, top_k=30)
        assert graph.operator("candidate_load").traffic(128) > 0
