"""Tests for accuracy, throughput and energy metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.accuracy import (
    accuracy_score,
    binary_f1_score,
    exact_match,
    prediction_agreement,
    span_f1_score,
)
from repro.metrics.throughput import (
    energy_efficiency_gopj,
    geomean,
    gops,
    sequences_per_second,
    speedup,
)


class TestAccuracyMetrics:
    def test_accuracy_score(self):
        assert accuracy_score(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([1]), np.array([1, 2]))

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([]), np.array([]))

    def test_binary_f1_perfect(self):
        labels = np.array([1, 0, 1, 1])
        assert binary_f1_score(labels, labels) == 1.0

    def test_binary_f1_no_positives_predicted(self):
        assert binary_f1_score(np.array([1, 1]), np.array([0, 0])) == 0.0

    def test_binary_f1_all_negative_agreement(self):
        assert binary_f1_score(np.array([0, 0]), np.array([0, 0])) == 1.0

    def test_binary_f1_mixed(self):
        labels = np.array([1, 1, 0, 0])
        preds = np.array([1, 0, 1, 0])
        # precision = 1/2, recall = 1/2 -> F1 = 1/2
        assert binary_f1_score(labels, preds) == pytest.approx(0.5)

    def test_span_f1_exact(self):
        assert span_f1_score((3, 7), (3, 7)) == 1.0

    def test_span_f1_partial_overlap(self):
        # gold {2..5}, pred {4..7}: overlap 2, precision 0.5, recall 0.5.
        assert span_f1_score((2, 5), (4, 7)) == pytest.approx(0.5)

    def test_span_f1_disjoint(self):
        assert span_f1_score((0, 2), (5, 7)) == 0.0

    def test_span_f1_degenerate_spans(self):
        assert span_f1_score((5, 2), (7, 3)) == 1.0  # both empty
        assert span_f1_score((0, 1), (7, 3)) == 0.0

    def test_exact_match(self):
        assert exact_match((1, 2), (1, 2)) == 1.0
        assert exact_match((1, 2), (1, 3)) == 0.0

    def test_prediction_agreement_alias(self):
        a = np.array([1, 2, 3])
        b = np.array([1, 2, 4])
        assert prediction_agreement(a, b) == pytest.approx(2 / 3)


class TestThroughputMetrics:
    def test_gops(self):
        assert gops(2e12, 2.0) == pytest.approx(1000.0)

    def test_gops_invalid_time(self):
        with pytest.raises(ValueError):
            gops(1e9, 0.0)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_geomean_matches_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([80.2]) == pytest.approx(80.2)

    def test_geomean_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([])

    def test_energy_efficiency(self):
        assert energy_efficiency_gopj(1e12, 1.0, 100.0) == pytest.approx(10.0)

    def test_sequences_per_second(self):
        assert sequences_per_second(16, 0.5) == 32.0

    @given(st.lists(st.floats(0.1, 1000.0), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_geomean_bounded_by_min_and_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9
