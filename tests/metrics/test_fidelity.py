"""Tests for the attention-fidelity metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sparse_attention import SparseAttentionConfig, sparse_attention_head
from repro.metrics.fidelity import attention_mass_coverage, output_relative_error, topk_recall
from repro.transformer.functional import softmax


class TestTopkRecall:
    def test_perfect_recall_when_selection_matches(self):
        scores = np.array([[1.0, 5.0, 3.0, 0.0]])
        assert topk_recall(scores, [np.array([1, 2])], k=2) == 1.0

    def test_zero_recall_when_disjoint(self):
        scores = np.array([[9.0, 8.0, 1.0, 0.0]])
        assert topk_recall(scores, [np.array([2, 3])], k=2) == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            topk_recall(np.zeros(4), [np.array([0])], k=1)
        with pytest.raises(ValueError):
            topk_recall(np.zeros((2, 4)), [np.array([0])], k=1)

    def test_quantized_selection_has_high_recall(self, rng):
        q = rng.normal(size=(24, 32))
        k = rng.normal(size=(24, 32))
        v = rng.normal(size=(24, 32))
        result = sparse_attention_head(q, k, v, SparseAttentionConfig(top_k=8, quant_bits=4))
        exact = q @ k.T
        assert topk_recall(exact, result.selected, k=8) > 0.7


class TestMassCoverage:
    def test_full_selection_covers_everything(self, rng):
        probs = softmax(rng.normal(size=(3, 6)))
        selected = [np.arange(6)] * 3
        assert attention_mass_coverage(probs, selected) == pytest.approx(1.0)

    def test_partial_selection_covers_less(self, rng):
        probs = softmax(rng.normal(size=(3, 10)))
        selected = [np.array([0, 1])] * 3
        assert attention_mass_coverage(probs, selected) < 1.0

    def test_topk_selection_covers_most_mass(self, rng):
        q = rng.normal(size=(16, 32))
        k = rng.normal(size=(16, 32))
        v = rng.normal(size=(16, 32))
        result = sparse_attention_head(q, k, v, SparseAttentionConfig(top_k=8, quant_bits=4))
        dense_probs = softmax(q @ k.T / np.sqrt(32))
        assert attention_mass_coverage(dense_probs, result.selected) > 0.7

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            attention_mass_coverage(np.zeros(4), [np.array([0])])


class TestOutputError:
    def test_zero_for_identical_outputs(self, rng):
        x = rng.normal(size=(5, 8))
        assert output_relative_error(x, x) == 0.0

    def test_scale_invariant_definition(self, rng):
        x = rng.normal(size=(5, 8))
        noisy = x + 0.1 * np.linalg.norm(x) / np.sqrt(x.size) * rng.normal(size=x.shape)
        error = output_relative_error(x, noisy)
        assert 0.0 < error < 0.3

    def test_error_decreases_with_larger_k(self, rng):
        q = rng.normal(size=(32, 16))
        k = rng.normal(size=(32, 16))
        v = rng.normal(size=(32, 16))
        dense_probs = softmax(q @ k.T / np.sqrt(16))
        dense_output = dense_probs @ v
        errors = []
        for top_k in (4, 16, 32):
            result = sparse_attention_head(q, k, v, SparseAttentionConfig(top_k=top_k, quant_bits=8))
            errors.append(output_relative_error(dense_output, result.context))
        assert errors[0] >= errors[1] >= errors[2]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            output_relative_error(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_zero_reference_is_defined(self):
        assert output_relative_error(np.zeros((2, 2)), np.ones((2, 2))) == 0.0
