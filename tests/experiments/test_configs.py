"""Config round-trip, override parsing, and JSON-file loading for every spec."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.evaluation.serve import ServeConfig
from repro.evaluation.serving_sweep import ServingSweepConfig
from repro.experiments import list_experiments
from repro.experiments.config import coerce_value, parse_assignment

ALL_SPECS = list_experiments()


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda spec: spec.name)
class TestEverySpecConfig:
    def test_round_trip_identity(self, spec):
        config = spec.config_cls()
        rebuilt = spec.config_cls.from_dict(config.to_dict())
        assert rebuilt == config

    def test_to_dict_is_json_ready(self, spec):
        config = spec.config_cls()
        assert spec.config_cls.from_dict(json.loads(json.dumps(config.to_dict()))) == config

    def test_from_file_round_trip(self, spec, tmp_path):
        config = spec.config_cls()
        path = tmp_path / f"{spec.name}.json"
        path.write_text(json.dumps(config.to_dict()))
        assert spec.config_cls.from_file(path) == config

    def test_unknown_key_rejected(self, spec):
        with pytest.raises(ValueError, match="valid keys"):
            spec.config_cls.from_dict({"definitely_not_a_field": 1})

    def test_every_field_survives_a_set_override(self, spec):
        """`--set field=<rendered default>` must parse back to the default."""
        config = spec.config_cls()
        for field in dataclasses.fields(spec.config_cls):
            if not field.init or field.name.startswith("_"):
                continue
            value = getattr(config, field.name)
            if value is None:
                text = "none"
            elif isinstance(value, tuple):
                text = ",".join(str(item) for item in value)
            else:
                text = str(value)
            overridden = config.with_overrides([f"{field.name}={text}"])
            assert getattr(overridden, field.name) == value, field.name


class TestOverrideParsing:
    def test_parse_assignment_splits_and_normalizes(self):
        assert parse_assignment("batch-size=8") == ("batch_size", "8")

    def test_parse_assignment_rejects_missing_equals(self):
        with pytest.raises(ValueError):
            parse_assignment("batch_size")

    def test_scalar_coercions(self):
        assert coerce_value("8", int) == 8
        assert coerce_value("2.5", float) == 2.5
        assert coerce_value("true", bool) is True
        assert coerce_value("off", bool) is False
        assert coerce_value("mrpc", str) == "mrpc"

    def test_optional_and_tuple_coercions(self):
        assert coerce_value("none", float | None) is None
        assert coerce_value("250", float | None) == 250.0
        assert coerce_value("mrpc,rte", tuple[str, ...]) == ("mrpc", "rte")
        assert coerce_value("0.5,1.1", tuple[float, ...]) == (0.5, 1.1)

    def test_bad_bool_rejected(self):
        with pytest.raises(ValueError):
            coerce_value("maybe", bool)

    def test_set_override_changes_nested_types(self):
        config = ServingSweepConfig().with_overrides(
            ["datasets=mrpc,rte", "load-fractions=0.5,1.1", "requests=32"]
        )
        assert config.datasets == ("mrpc", "rte")
        assert config.load_fractions == (0.5, 1.1)
        assert config.requests == 32

    def test_unknown_field_in_set_rejected(self):
        with pytest.raises(ValueError, match="no field"):
            ServeConfig().with_overrides(["qqps=100"])


class TestValidation:
    def test_choices_enforced(self):
        with pytest.raises(ValueError, match="must be one of"):
            ServeConfig(dataset="imagenet")

    def test_cross_field_validation(self):
        with pytest.raises(ValueError, match="trace_file"):
            ServeConfig(arrival="trace")

    def test_value_ranges(self):
        with pytest.raises(ValueError):
            ServeConfig(qps=-5.0)
        with pytest.raises(ValueError):
            ServingSweepConfig(datasets=("imagenet",))

    def test_replace_revalidates(self):
        with pytest.raises(ValueError):
            ServeConfig().replace(requests=0)

    def test_qps_rejected_for_non_rate_arrivals(self):
        with pytest.raises(ValueError, match="not rate-driven"):
            ServeConfig(arrival="closed-loop", qps=300.0)

    def test_empty_tuples_rejected(self):
        with pytest.raises(ValueError, match="must not be empty"):
            ServingSweepConfig(datasets=())
        with pytest.raises(ValueError, match="must not be empty"):
            ServingSweepConfig().with_overrides(["load_fractions="])

    def test_unknown_batch_policy_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="Unknown batch-policy"):
            ServingSweepConfig(batch_policies=("bogus",))

    def test_batch_size_validated_at_config_time(self):
        with pytest.raises(ValueError, match="batch_size"):
            ServeConfig(batch_size=0)
        with pytest.raises(ValueError, match="batch_size"):
            ServingSweepConfig(batch_size=0)

    def test_canonical_registry_names_accepted(self):
        # Aliases and canonical names both resolve; no hard-coded choices.
        assert ServeConfig(batch_policy="length-bucketed").batch_policy == "length-bucketed"
        assert ServeConfig(arrival="closed").arrival == "closed"

    def test_unknown_serve_components_rejected(self):
        with pytest.raises(ValueError, match="Unknown arrival"):
            ServeConfig(arrival="fractal")
        with pytest.raises(ValueError, match="Unknown router"):
            ServeConfig(routing="random")

    def test_sweep_requires_rate_driven_arrival(self):
        with pytest.raises(ValueError, match="not rate-driven"):
            ServingSweepConfig(arrival="closed-loop")

    def test_unknown_pair_keys_rejected_at_config_time(self):
        from repro.evaluation import Fig6Config, Fig7Config

        with pytest.raises(ValueError, match="unknown dataset"):
            Fig6Config(pairs=("bert-base:imagenet",))
        with pytest.raises(ValueError, match="unknown model"):
            Fig7Config(pairs=("gpt-5:mrpc",))

    def test_missing_trace_file_rejected_at_config_time(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            ServeConfig(arrival="trace", trace_file=str(tmp_path / "missing.json"))

    def test_nonpositive_load_fractions_rejected(self):
        with pytest.raises(ValueError, match="> 0"):
            ServingSweepConfig(load_fractions=(0.5, 0.0))
