"""Seed determinism across fresh processes, for every registered experiment.

Two brand-new interpreters run the full experiment matrix at the default
seed with shrunk-but-representative configs; each emits one JSON blob of
``{experiment name: payload}``.  Every payload must come back byte-identical
-- schedule caches, RNG stream salts, dict ordering, float formatting and
all.  A drift here means a hidden source of nondeterminism (wall clock,
set iteration, uncached randomness) crept into some engine.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import list_experiments

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Shrink overrides keeping every experiment's subprocess run in seconds
#: while still exercising its real pipeline (no experiment is skipped).
OVERRIDES: dict[str, dict] = {
    "table1": {"num_sampled_sequences": 200},
    "fig6": {
        "pairs": ["bert-base:mrpc"],
        "top_k_values": [30],
        "examples": 2,
        "max_length": 64,
    },
    "fig7a": {"pairs": ["bert-base:mrpc"]},
    "fig7b": {"pairs": ["bert-base:mrpc"]},
    "table2": {"serving_requests": 32},
    "serve": {"qps": 200.0, "requests": 32, "slo_ms": 50.0},
    "serving-sweep": {
        "datasets": ["mrpc"],
        "load_fractions": [0.5],
        "requests": 32,
        "classes": ["none", "interactive:0.5,best-effort:0.5"],
        "slo_ms": 50.0,
    },
    "decode-sweep": {
        "load_fractions": [0.5],
        "requests": 24,
        "topk": [5],
        "accuracy_examples": 2,
    },
    "plan": {
        "devices": ["gpu-rtx6000"],
        "max_per_type": 1,
        "max_total": 1,
        "arrival": "poisson",
        "qps": 150.0,
        "requests": 32,
    },
}

#: The subprocess body: run every registered experiment and print the
#: payload map as JSON.  Runs under a fresh interpreter so nothing leaks
#: between the two matrix passes (caches, registries, RNG state).
RUNNER = """
import json, sys
from repro.experiments import list_experiments, run_report

overrides = json.loads(sys.argv[1])
payloads = {}
for spec in list_experiments():
    config = spec.config_cls.from_dict(
        {**spec.config_cls().to_dict(), **overrides.get(spec.name, {})}
    )
    payloads[spec.name] = run_report(spec.name, config=config).payload
print(json.dumps(payloads, sort_keys=True))
"""


def _run_matrix() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, "-c", RUNNER, json.dumps(OVERRIDES)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        check=True,
    )
    payloads = json.loads(result.stdout)
    # Byte-level comparison: re-serialize each payload canonically so the
    # assertion diff names the drifting experiment, not a 100 kB blob.
    return {name: json.dumps(payload, sort_keys=True) for name, payload in payloads.items()}


@pytest.fixture(scope="module")
def matrix_runs():
    return _run_matrix(), _run_matrix()


EXPERIMENT_NAMES = [spec.name for spec in list_experiments()]


def test_matrix_covers_every_registered_experiment(matrix_runs):
    first, _ = matrix_runs
    assert sorted(first) == sorted(EXPERIMENT_NAMES)


@pytest.mark.parametrize("name", EXPERIMENT_NAMES)
def test_reports_are_byte_identical_across_fresh_processes(matrix_runs, name):
    first, second = matrix_runs
    assert first[name] == second[name]
