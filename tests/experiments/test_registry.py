"""Tests for the central component/experiment registry."""

from __future__ import annotations

import pytest

from repro.registry import Registry, available, create, resolve
from repro.experiments import (
    get_experiment,
    list_experiments,
    run_experiment,
    run_report,
)
from repro.evaluation.fig1_breakdown import Fig1Config, run_fig1_breakdown
from repro.serving import (
    ClosedLoopArrivals,
    LengthBucketedBatcher,
    PoissonArrivals,
    TraceArrivals,
)

EXPECTED_EXPERIMENTS = {
    "fig1",
    "table1",
    "fig5",
    "fig6",
    "fig7a",
    "fig7b",
    "table2",
    "serve",
    "serving-sweep",
    "decode-sweep",
    "plan",
}


class TestGenericRegistry:
    def test_register_create_and_alias(self):
        registry = Registry()

        @registry.register("widget", "gizmo", aliases=("g",))
        class Gizmo:
            def __init__(self, size=1):
                self.size = size

        assert registry.create("widget", "gizmo", size=3).size == 3
        assert isinstance(registry.create("widget", "g"), Gizmo)
        assert registry.available("widget") == ["gizmo"]

    def test_duplicate_name_rejected(self):
        registry = Registry()
        registry.add("widget", "gizmo", object)
        with pytest.raises(ValueError):
            registry.add("widget", "gizmo", dict)

    def test_unknown_kind_and_name_raise_keyerror(self):
        registry = Registry()
        with pytest.raises(KeyError):
            registry.resolve("widget", "gizmo")
        registry.add("widget", "gizmo", object)
        with pytest.raises(KeyError):
            registry.resolve("widget", "doohickey")

    def test_name_lookup_is_case_insensitive(self):
        registry = Registry()
        registry.add("widget", "Gizmo", object)
        assert registry.resolve("widget", "GIZMO") is object


class TestComponentKinds:
    def test_serving_components_registered(self):
        assert "poisson" in available("arrival")
        assert "trace" in available("arrival")
        assert "closed-loop" in available("arrival")
        assert "length-bucketed" in available("batch-policy")
        assert "least-loaded" in available("router")

    def test_create_builds_components(self):
        assert isinstance(create("arrival", "poisson", rate_qps=10.0), PoissonArrivals)
        assert isinstance(create("arrival", "closed"), ClosedLoopArrivals)
        assert isinstance(
            create("arrival", "trace", trace=(0.0, 0.1)), TraceArrivals
        )
        policy = create("batch-policy", "bucketed", batch_size=8, bucket_width=32.0)
        assert isinstance(policy, LengthBucketedBatcher)
        assert policy.bucket_width == 32.0

    def test_resolve_returns_class(self):
        assert resolve("router", "round-robin").__name__ == "RoundRobinRouter"


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        assert {spec.name for spec in list_experiments()} == EXPECTED_EXPERIMENTS

    def test_specs_are_ordered(self):
        names = [spec.name for spec in list_experiments()]
        assert names.index("fig1") < names.index("table2") < names.index("serve")

    def test_unknown_experiment_raises_keyerror(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_run_experiment_three_equivalent_ways(self):
        by_default = run_experiment("fig1")
        by_dict = run_experiment("fig1", {"sequence_length": 128})
        by_config = run_experiment("fig1", Fig1Config(sequence_length=128))
        assert (
            by_default.attention_share_percent
            == by_dict.attention_share_percent
            == by_config.attention_share_percent
        )

    def test_run_experiment_keyword_overrides(self):
        result = run_experiment("fig1", mode="flops")
        assert result.mode == "flops"

    def test_run_experiment_rejects_wrong_config_type(self):
        from repro.evaluation.table1_models import Table1Config

        with pytest.raises(TypeError):
            run_experiment("fig1", Table1Config())

    def test_run_report_bundles_text_and_payload(self):
        from repro.evaluation.fig5_timeline import Fig5Config

        report = run_report("fig5")
        assert report.name == "fig5"
        assert "length-aware" in report.text
        assert report.payload["experiment"] == "fig5"
        assert report.payload["config"] == Fig5Config().to_dict()
        assert report.payload["result"]["saved_cycles_vs_sequential"] > 0

    def test_every_result_exposes_to_dict(self):
        report = run_report("fig1")
        assert callable(getattr(report.result, "to_dict"))


class TestPluginComponents:
    def test_third_party_arrival_flows_through_serve(self):
        import numpy as np
        from dataclasses import dataclass

        from repro.registry import REGISTRY
        from repro.serving import ArrivalProcess

        if ("arrival", "uniform-jitter") not in REGISTRY:

            @REGISTRY.register("arrival", "uniform-jitter")
            @dataclass
            class UniformJitterArrivals(ArrivalProcess):
                rate_qps: float = 100.0
                name: str = "uniform-jitter"

                def arrival_times(self, n, rng):
                    return np.cumsum(rng.uniform(0, 2.0 / self.rate_qps, size=n))

        result = run_experiment(
            "serve", {"arrival": "uniform-jitter", "qps": 200.0, "requests": 32}
        )
        assert result.report.arrival_process == "uniform-jitter"
        # Without qps the rate-driven plug-in sweeps, like the built-ins.
        assert run_experiment("serve", {"arrival": "uniform-jitter", "requests": 32}).mode == "sweep"

    def test_batch_policy_typo_still_raises(self):
        from repro.serving import get_batch_policy

        with pytest.raises(TypeError):
            get_batch_policy("timeout", timeout=0.5)  # typo for timeout_s


class TestDeprecationShims:
    def test_legacy_run_functions_warn_and_delegate(self):
        with pytest.warns(DeprecationWarning):
            legacy = run_fig1_breakdown(sequence_length=96)
        modern = run_experiment("fig1", {"sequence_length": 96})
        assert legacy.attention_share_percent == modern.attention_share_percent
