"""Live gateway behavior: dispatch, backpressure, supervision, KV accounting.

These tests drive :class:`repro.live.LiveGateway` directly (no HTTP) with a
deterministic fake device, so every timing decision is controlled by the
test rather than a catalog cost model.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.devices import BatchExecution, Device
from repro.live import LiveGateway
from repro.serving import FixedSizeBatcher, TimeoutBatcher


class FakeDevice(Device):
    """Constant-latency device with an optional decode cost model."""

    name = "fake"
    backend = "fake"

    def __init__(self, latency=0.05, decode_step=None, **kwargs):
        self.latency = latency
        self.decode_step = decode_step
        super().__init__(**kwargs)

    def execute(self, lengths):
        return BatchExecution(
            device=self.name,
            lengths=list(lengths),
            latency_seconds=self.latency,
            completion_offsets=[self.latency] * len(lengths),
            admit_seconds=self.latency,
        )

    def kv_bytes_per_token(self):
        return 1024 if self.decode_step is not None else None

    def kv_read_bandwidth(self):
        return 1e9 if self.decode_step is not None else None

    def decode_step_latency_seconds(self, context_lengths):
        if self.decode_step is None:
            raise NotImplementedError
        return self.decode_step


def run(coro):
    return asyncio.run(coro)


def _ids(stats_or_records):
    return sorted(r.request.request_id for r in stats_or_records)


class TestGatewayDispatch:
    def test_serves_submitted_requests_and_resolves_waiters(self):
        async def scenario():
            gateway = LiveGateway(
                [FakeDevice(latency=0.01)],
                "mrpc",
                batch_policy=FixedSizeBatcher(batch_size=4),
            )
            await gateway.start()
            results = [gateway.submit(length=32) for _ in range(8)]
            assert all(r.status == "queued" for r in results)
            records = await asyncio.gather(
                *(gateway.wait_for(r.request.request_id) for r in results)
            )
            assert sorted(r.request.request_id for r in records) == list(range(8))
            stats = await gateway.shutdown()
            assert stats["num_completed"] == 8
            assert stats["num_requests"] == 8
            assert stats["num_batches"] == 2
            assert stats["live"]["stopped"] is True
            return gateway

        gateway = run(scenario())
        assert _ids(gateway.report.records) == list(range(8))

    def test_partial_batch_flushes_on_drain(self):
        async def scenario():
            gateway = LiveGateway(
                [FakeDevice(latency=0.01)],
                "mrpc",
                batch_policy=FixedSizeBatcher(batch_size=16),
            )
            await gateway.start()
            for _ in range(3):
                gateway.submit(length=32)
            # A fixed-size policy holds the partial batch; graceful shutdown
            # pumps with draining=True, exactly like the simulator's
            # end-of-stream flush.
            stats = await gateway.shutdown()
            assert stats["num_completed"] == 3
            assert stats["num_batches"] == 1
            return stats

        run(scenario())

    def test_wall_clock_timestamps_start_near_zero(self):
        async def scenario():
            gateway = LiveGateway(
                [FakeDevice(latency=0.01)],
                "mrpc",
                batch_policy=FixedSizeBatcher(batch_size=1),
            )
            await gateway.start()
            await asyncio.sleep(0.05)  # startup delay the rebase must hide
            result = gateway.submit(length=32)
            assert result.request.arrival_time == pytest.approx(0.0, abs=5e-3)
            return await gateway.shutdown()

        stats = run(scenario())
        assert stats["makespan_seconds"] < 0.1

    def test_submit_after_shutdown_reports_draining(self):
        async def scenario():
            gateway = LiveGateway([FakeDevice(latency=0.01)], "mrpc")
            await gateway.start()
            shutdown = asyncio.create_task(gateway.shutdown())
            await asyncio.sleep(0)
            refused = gateway.submit(length=32)
            await shutdown
            return refused

        refused = run(scenario())
        assert refused.status == "draining"
        assert refused.request is None


class TestBackpressure:
    def test_bounded_queue_sheds_past_depth(self):
        async def scenario():
            gateway = LiveGateway(
                [FakeDevice(latency=0.5)],
                "mrpc",
                batch_policy=FixedSizeBatcher(batch_size=16),
                max_queue_depth=4,
            )
            await gateway.start()
            verdicts = [gateway.submit(length=32).status for _ in range(10)]
            stats = await gateway.shutdown()
            return verdicts, stats

        verdicts, stats = run(scenario())
        assert verdicts.count("queued") == 4
        assert verdicts.count("shed") == 6
        assert stats["num_shed"] == 6
        assert stats["num_completed"] == 4

    def test_predicted_miss_shedding_at_arrival(self):
        async def scenario():
            gateway = LiveGateway(
                [FakeDevice(latency=0.5)],
                "mrpc",
                batch_policy=FixedSizeBatcher(batch_size=4),
                shed_on_predicted_miss=True,
            )
            await gateway.start()
            # 1 ms budget against a 500 ms service estimate: provably late.
            doomed = gateway.submit(length=32, slo_ms=1.0)
            viable = gateway.submit(length=32, slo_ms=5000.0)
            stats = await gateway.shutdown()
            return doomed, viable, stats

        doomed, viable, stats = run(scenario())
        assert doomed.status == "shed-predicted"
        assert viable.status == "queued"
        assert stats["num_shed_predicted"] == 1
        assert stats["num_completed"] == 1


class TestSupervision:
    def test_worker_crash_requeues_batch_exactly_once(self):
        async def scenario():
            gateway = LiveGateway(
                [FakeDevice(latency=0.02)],
                "mrpc",
                batch_policy=FixedSizeBatcher(batch_size=4),
            )
            await gateway.start()
            gateway.actors[0].fail_next_batches = 1
            results = [gateway.submit(length=32) for _ in range(4)]
            records = await asyncio.gather(
                *(gateway.wait_for(r.request.request_id) for r in results)
            )
            stats = await gateway.shutdown()
            return gateway, records, stats

        gateway, records, stats = run(scenario())
        assert gateway.actors[0].restarts == 1
        assert stats["live"]["worker_restarts"] == [1]
        # Every request completed exactly once: requeued, never duplicated.
        assert sorted(r.request.request_id for r in records) == list(range(4))
        assert _ids(gateway.report.records) == list(range(4))
        assert stats["num_completed"] == 4

    def test_shutdown_mid_batch_requeues_exactly_once(self):
        async def scenario():
            gateway = LiveGateway(
                [FakeDevice(latency=0.4)],
                "mrpc",
                batch_policy=FixedSizeBatcher(batch_size=4),
            )
            await gateway.start()
            for _ in range(4):
                gateway.submit(length=32)
            # Let the batch reach the actor and start its 400 ms sleep.
            for _ in range(50):
                await asyncio.sleep(0.002)
                if gateway.actors[0].in_flight is not None:
                    break
            assert gateway.actors[0].in_flight is not None
            stats = await gateway.shutdown(abort_in_flight=True)
            return gateway, stats

        gateway, stats = run(scenario())
        # The aborted batch never finalized; its requeued requests were cut
        # into a fresh batch during the drain and recorded exactly once.
        assert stats["num_completed"] == 4
        assert _ids(gateway.report.records) == list(range(4))
        assert stats["live"]["stopped"] is True

    def test_crash_during_decode_releases_kv_reservation(self):
        async def scenario():
            device = FakeDevice(latency=0.01, decode_step=0.005, kv_cache_bytes=1 << 30)
            gateway = LiveGateway(
                [device],
                "mrpc",
                batch_policy=FixedSizeBatcher(batch_size=1),
            )
            await gateway.start()
            gateway.actors[0].fail_after_decode_steps = 2
            result = gateway.submit(length=32, output_len=8)
            assert result.status == "queued"
            reserved_seen = 0
            for _ in range(200):
                await asyncio.sleep(0.002)
                reserved_seen = max(reserved_seen, gateway.kv_reserved_bytes[0])
                if gateway.actors[0].restarts:
                    break
            record = await gateway.wait_for(result.request.request_id)
            stats = await gateway.shutdown()
            return gateway, reserved_seen, record, stats

        gateway, reserved_seen, record, stats = run(scenario())
        assert gateway.actors[0].restarts == 1
        # (32 prompt + 8 output) tokens * 1024 bytes were held in flight...
        assert reserved_seen == 40 * 1024
        # ...and the crash released them (the retry re-reserved, then
        # finalize released again).
        assert gateway.kv_reserved_bytes == [0]
        assert stats["live"]["kv_reserved_bytes"] == [0]
        # Decode extended the completion past prefill: 7 post-prefill tokens.
        assert record.completion_time - record.start_time == pytest.approx(
            0.01 + 7 * 0.005, abs=1e-6
        )
        assert stats["num_completed"] == 1

    def test_stats_during_flight_counts_in_flight_batches(self):
        async def scenario():
            gateway = LiveGateway(
                [FakeDevice(latency=0.2)],
                "mrpc",
                batch_policy=TimeoutBatcher(batch_size=4, timeout_s=0.005),
            )
            await gateway.start()
            gateway.submit(length=32)
            for _ in range(100):
                await asyncio.sleep(0.002)
                if gateway.actors[0].in_flight is not None:
                    break
            mid = gateway.stats()
            stats = await gateway.shutdown()
            return mid, stats

        mid, stats = run(scenario())
        assert mid["live"]["in_flight_batches"] == 1
        assert mid["num_completed"] == 0  # nothing finalizes before it finishes
        assert stats["num_completed"] == 1


class TestFaultRemedies:
    """Chaos semantics of the live gateway: double-crash shedding, hedging,
    and KV-cache accounting when crashes interrupt a hedged pair."""

    def test_double_crash_sheds_instead_of_looping(self):
        """Requeue-exactly-once: the first crash replays the batch, the
        second sheds its requests (waiters get the error) -- never an
        infinite supervisor loop."""

        async def scenario():
            gateway = LiveGateway(
                [FakeDevice(latency=0.02)],
                "mrpc",
                batch_policy=FixedSizeBatcher(batch_size=4),
            )
            await gateway.start()
            gateway.actors[0].fail_next_batches = 2
            results = [gateway.submit(length=32) for _ in range(4)]
            outcomes = await asyncio.gather(
                *(gateway.wait_for(r.request.request_id) for r in results),
                return_exceptions=True,
            )
            stats = await gateway.shutdown()
            return gateway, outcomes, stats

        gateway, outcomes, stats = run(scenario())
        assert gateway.actors[0].restarts == 2
        assert all(isinstance(outcome, RuntimeError) for outcome in outcomes)
        assert stats["num_crashes"] == 2
        assert stats["num_replayed"] == 4
        assert stats["num_shed_crashed"] == 4
        assert stats["num_completed"] == 0
        assert stats["live"]["worker_restarts"] == [2]

    def test_hedged_batch_completes_exactly_once(self):
        async def scenario():
            gateway = LiveGateway(
                [FakeDevice(latency=0.05), FakeDevice(latency=0.05)],
                "mrpc",
                batch_policy=FixedSizeBatcher(batch_size=4),
                hedging=True,
            )
            await gateway.start()
            results = [gateway.submit(length=32) for _ in range(8)]
            records = await asyncio.gather(
                *(gateway.wait_for(r.request.request_id) for r in results)
            )
            stats = await gateway.shutdown()
            return gateway, records, stats

        gateway, records, stats = run(scenario())
        assert stats["num_completed"] == 8
        assert stats["num_hedged"] > 0
        # First completion won; the loser was cancelled, never finalized:
        # every request appears exactly once.
        assert _ids(gateway.report.records) == list(range(8))

    def test_crash_during_hedge_mirror_wins_and_kv_released(self):
        """A crashed primary must not strand its requests (the live mirror
        finishes them) nor leak its KV-cache reservation."""

        async def scenario():
            devices = [
                FakeDevice(latency=0.05, decode_step=0.001, kv_cache_bytes=1 << 30),
                FakeDevice(latency=0.05, decode_step=0.001, kv_cache_bytes=1 << 30),
            ]
            gateway = LiveGateway(
                devices,
                "mrpc",
                batch_policy=FixedSizeBatcher(batch_size=4),
                hedging=True,
            )
            await gateway.start()
            # Crash whichever copy device 0 picks up first; its hedge twin
            # on device 1 survives and wins the pair.
            gateway.actors[0].fail_next_batches = 1
            results = [gateway.submit(length=32) for _ in range(4)]
            records = await asyncio.gather(
                *(gateway.wait_for(r.request.request_id) for r in results)
            )
            stats = await gateway.shutdown()
            return gateway, records, stats

        gateway, records, stats = run(scenario())
        assert gateway.actors[0].restarts == 1
        assert stats["num_crashes"] == 1
        assert stats["num_completed"] == 4
        assert stats["num_hedged"] >= 1
        assert stats["num_hedge_wins"] >= 1
        # No request was shed or duplicated, and no KV bytes leaked.
        assert stats["num_shed_crashed"] == 0
        assert _ids(gateway.report.records) == list(range(4))
        assert gateway.kv_reserved_bytes == [0, 0]
        assert stats["live"]["kv_reserved_bytes"] == [0, 0]
