"""The sim-vs-live agreement contract on the checked-in validation trace.

This is the acceptance test of the live subsystem: a trace replayed through
real sockets and wall-clock sleeps must reproduce the simulator's report --
counts exactly, rates within 2 %.
"""

from __future__ import annotations

import json

import pytest

from repro.live import (
    CRASH_TRACE_PATH,
    VALIDATION_TRACE_PATH,
    build_crash_trace,
    build_validation_trace,
    load_validation_trace,
    run_crash_validation,
    run_live_validation,
    simulate_trace,
    trace_requests,
)


def test_checked_in_trace_matches_builder():
    """The JSON on disk is exactly the builder's output (no silent drift)."""
    on_disk = json.loads(VALIDATION_TRACE_PATH.read_text())["entries"]
    assert on_disk == build_validation_trace()


def test_trace_requests_are_sorted_and_deadlined():
    requests = trace_requests(load_validation_trace())
    assert len(requests) == 80
    assert all(r.deadline == pytest.approx(r.arrival_time + 2.0) for r in requests)
    arrivals = [r.arrival_time for r in requests]
    assert arrivals == sorted(arrivals)


def test_simulator_baseline_on_validation_trace():
    """Pin the simulated outcome the live gateway is validated against."""
    report = simulate_trace(load_validation_trace())
    assert report.num_requests == 80
    assert report.num_completed == 63
    assert report.num_shed == 17
    assert report.num_shed_late == 0
    # Generous SLOs: every served request lands on time.
    assert report.attainment_rate == pytest.approx(63 / 80)


def test_sim_vs_live_agreement_within_tolerance():
    """Replay through HTTP + wall clock; diff against the simulator.

    Counts must match exactly (the trace gives every admission decision
    hundreds of milliseconds of margin); goodput / sustained QPS / makespan
    must agree within 2 % (the only live skew is pacing jitter).
    """
    result = run_live_validation(tolerance=0.02)
    agreement = result["agreement"]
    assert agreement["within_tolerance"], json.dumps(agreement, indent=2)
    for key, entry in agreement["counts"].items():
        assert entry["match"], f"{key}: sim={entry['sim']} live={entry['live']}"
    # /stats totals equal the replayed-trace simulator totals, exactly.
    assert result["live"]["num_completed"] == result["sim"]["num_completed"] == 63
    assert result["live"]["num_shed"] == result["sim"]["num_shed"] == 17
    assert result["live"]["attainment_rate"] == result["sim"]["attainment_rate"]
    # The live gateway drained cleanly.
    live = result["live"]["live"]
    assert live["stopped"] is True
    assert live["queue_depth"] == 0
    assert live["in_flight_batches"] == 0
    assert live["worker_restarts"] == [0]


def test_checked_in_crash_trace_matches_builder():
    """The crash-scenario JSON on disk is exactly the builder's output."""
    on_disk = json.loads(CRASH_TRACE_PATH.read_text())["entries"]
    assert on_disk == build_crash_trace()


def test_crash_scenario_sim_vs_live_agreement():
    """The extended contract: a scripted device crash produces the same
    record-level outcome in both engines -- the simulator crashes the batch
    mid-execution at the scripted instant, the live gateway crashes the
    worker on the matching pickup cue, and both replay the lost batch at
    the original drain time (the crashed booking stands in both engines).

    Counts (including crash/replay/shed counters) must match exactly, rates
    within 2 %, and the live supervisor's restart count must equal the
    simulator's crash count.
    """
    result = run_crash_validation(tolerance=0.02)
    agreement = result["agreement"]
    assert agreement["within_tolerance"], json.dumps(agreement, indent=2)
    for key, entry in agreement["counts"].items():
        assert entry["match"], f"{key}: sim={entry['sim']} live={entry['live']}"
    # Pin the scenario itself: one crash, the whole 16-request batch replayed,
    # nothing shed -- the requeued batch lands inside every deadline.
    assert result["sim"]["num_crashes"] == result["live"]["num_crashes"] == 1
    assert result["sim"]["num_replayed"] == result["live"]["num_replayed"] == 16
    assert result["sim"]["num_shed_crashed"] == 0
    assert result["sim"]["num_completed"] == result["live"]["num_completed"] == 39
    supervision = agreement["supervision"]
    assert supervision["worker_restarts"] == [1]
    assert supervision["requeued_batches"] == 1
    assert supervision["restarts_match_crashes"] is True
