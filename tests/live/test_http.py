"""The HTTP front end: ingest, health, stats, backpressure, shutdown."""

from __future__ import annotations

import asyncio

from repro.devices import BatchExecution, Device
from repro.live import LiveGateway, LiveServer, http_json, stream_trace
from repro.serving import FixedSizeBatcher


class FakeDevice(Device):
    name = "fake"
    backend = "fake"

    def __init__(self, latency=0.02, **kwargs):
        self.latency = latency
        super().__init__(**kwargs)

    def execute(self, lengths):
        return BatchExecution(
            device=self.name,
            lengths=list(lengths),
            latency_seconds=self.latency,
            completion_offsets=[self.latency] * len(lengths),
            admit_seconds=self.latency,
        )


async def _server(**gateway_kwargs) -> LiveServer:
    gateway_kwargs.setdefault("batch_policy", FixedSizeBatcher(batch_size=2))
    latency = gateway_kwargs.pop("latency", 0.02)
    gateway = LiveGateway([FakeDevice(latency=latency)], "mrpc", **gateway_kwargs)
    server = LiveServer(gateway, host="127.0.0.1", port=0)
    await server.start()
    return server


class TestEndpoints:
    def test_healthz_stats_and_waited_request(self):
        # batch_size=2 holds a lone request until the batch fills, so drive
        # two concurrent waited requests: both unblock when the batch runs.
        async def scenario():
            server = await _server()
            host, port = server.host, server.port
            status, health = await http_json(host, port, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            assert health["devices"] == 1

            results = await asyncio.gather(
                http_json(host, port, "POST", "/v1/requests", {"length": 48, "wait": True}),
                http_json(host, port, "POST", "/v1/requests", {"length": 48, "wait": True}),
            )
            for status, payload in results:
                assert status == 200
                assert payload["status"] == "completed"
                assert payload["latency_ms"] > 0
            status, stats = await http_json(host, port, "GET", "/stats")
            assert status == 200
            assert stats["num_completed"] == 2
            assert stats["live"]["queue_depth"] == 0
            status, final = await http_json(host, port, "POST", "/shutdown")
            assert status == 200
            assert final["num_completed"] == 2
            assert final["live"]["stopped"] is True
            await server.serve_until_shutdown()

        asyncio.run(scenario())

    def test_streaming_ingest(self):
        async def scenario():
            server = await _server(batch_policy=FixedSizeBatcher(batch_size=4))
            host, port = server.host, server.port
            entries = [{"length": 32} for _ in range(8)]
            summary = await stream_trace(host, port, entries)
            assert summary == {"submitted": 8, "queued": 8, "shed": 0, "draining": 0}
            status, final = await http_json(host, port, "POST", "/shutdown")
            assert final["num_completed"] == 8
            await server.serve_until_shutdown()

        asyncio.run(scenario())

    def test_backpressure_returns_429(self):
        async def scenario():
            server = await _server(
                batch_policy=FixedSizeBatcher(batch_size=16),
                max_queue_depth=2,
                latency=0.2,
            )
            host, port = server.host, server.port
            statuses = []
            for _ in range(6):
                status, payload = await http_json(
                    host, port, "POST", "/v1/requests", {"length": 32}
                )
                statuses.append((status, payload["status"]))
            await http_json(host, port, "POST", "/shutdown")
            await server.serve_until_shutdown()
            return statuses

        statuses = asyncio.run(scenario())
        assert statuses.count((200, "queued")) == 2
        assert statuses.count((429, "shed")) == 4

    def test_draining_returns_503_and_errors_are_4xx(self):
        async def scenario():
            server = await _server()
            host, port = server.host, server.port
            status, _ = await http_json(host, port, "GET", "/nope")
            assert status == 404
            status, _ = await http_json(host, port, "DELETE", "/stats")
            assert status == 405
            status, payload = await http_json(host, port, "POST", "/v1/requests", {})
            assert status == 400 and "length" in payload["error"]
            status, _ = await http_json(
                host, port, "POST", "/v1/requests", {"length": "not-a-number"}
            )
            assert status == 400

            shutdown = asyncio.create_task(http_json(host, port, "POST", "/shutdown"))
            await asyncio.sleep(0.01)
            status, payload = await http_json(
                host, port, "POST", "/v1/requests", {"length": 32}
            )
            assert (status, payload["status"]) == (503, "draining")
            status, health = await http_json(host, port, "GET", "/healthz")
            assert (status, health["status"]) == (200, "draining")
            await shutdown
            await server.serve_until_shutdown()

        asyncio.run(scenario())
