"""Request classes on the wire: sim-vs-live per-class agreement and 429s.

Two contracts:

* the checked-in validation trace, class-tagged entry-by-entry, replayed
  through real sockets must land the *same per-class counts* the simulator
  predicts (``/stats``'s ``classes`` block vs ``class_summaries``);
* bounded-queue shedding respects per-class limits -- a best-effort flood
  gets 429s at its own class limit while interactive traffic still queues.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.devices import BatchExecution, Device
from repro.live import (
    LiveGateway,
    LiveServer,
    http_json,
    load_validation_trace,
    replay_trace,
    simulate_trace,
    validation_gateway,
)
from repro.serving import FixedSizeBatcher

#: Deterministic tagging of the checked-in trace: cycle the built-in
#: classes by entry index (the trace is replayed sorted by arrival).
CLASS_CYCLE = ("interactive", "batch", "best-effort")

#: Count fields of a class summary that must agree exactly between engines
#: (rate fields like goodput depend on wall-clock makespan).
EXACT_FIELDS = (
    "offered",
    "completed",
    "on_time",
    "shed",
    "shed_admission",
    "shed_predicted",
    "shed_late",
    "shed_crashed",
)


def tagged_validation_trace() -> list[dict]:
    entries = load_validation_trace()
    return [
        {**entry, "class": CLASS_CYCLE[index % len(CLASS_CYCLE)]}
        for index, entry in enumerate(entries)
    ]


def test_sim_vs_live_per_class_counts_agree_on_validation_trace():
    """Replay the class-tagged trace through HTTP; diff the classes blocks.

    The trace's generous 2 s SLOs stay stamped on every entry (the class
    mix only relabels, it does not retime), so every admission decision
    keeps its hundreds-of-milliseconds margin and the per-class counts are
    exact in both engines.
    """
    entries = tagged_validation_trace()
    sim_report = simulate_trace(entries)
    sim_classes = sim_report.to_dict()["classes"]

    async def scenario():
        server = LiveServer(validation_gateway(), host="127.0.0.1", port=0)
        await server.start()
        try:
            await replay_trace("127.0.0.1", server.port, entries)
            return await server.gateway.shutdown()
        finally:
            await server.close()

    live_stats = asyncio.run(scenario())
    live_classes = live_stats["classes"]
    assert sorted(live_classes) == sorted(sim_classes)
    for name, sim_summary in sim_classes.items():
        for field in EXACT_FIELDS:
            assert live_classes[name][field] == sim_summary[field], (name, field)
        # Generous SLOs: attainment reduces to on_time/offered, exact in
        # both engines (None stays None for the SLO-less best-effort tier).
        assert live_classes[name]["attainment"] == sim_summary["attainment"], name
    # The totals still partition: classes cover the whole trace.
    assert sum(c["offered"] for c in live_classes.values()) == len(entries)
    assert sum(c["completed"] for c in live_classes.values()) == live_stats["num_completed"]
    # And the base agreement holds on the tagged trace too.
    assert live_stats["num_completed"] == sim_report.num_completed
    assert live_stats["num_shed"] == sim_report.num_shed


class SlowDevice(Device):
    name = "slow"
    backend = "fake"

    def __init__(self, latency=0.5, **kwargs):
        self.latency = latency
        super().__init__(**kwargs)

    def execute(self, lengths):
        return BatchExecution(
            device=self.name,
            lengths=list(lengths),
            latency_seconds=self.latency,
            completion_offsets=[self.latency] * len(lengths),
            admit_seconds=self.latency,
        )


def test_429_shedding_respects_per_class_limits():
    """Best-effort floods 429 at its own limit; interactive still queues."""

    async def scenario():
        gateway = LiveGateway(
            [SlowDevice()],
            "mrpc",
            batch_policy=FixedSizeBatcher(batch_size=16),
            class_queue_limits={"best-effort": 2},
        )
        server = LiveServer(gateway, host="127.0.0.1", port=0)
        await server.start()
        try:
            host, port = server.host, server.port
            statuses = []
            for _ in range(5):
                status, payload = await http_json(
                    host, port, "POST", "/v1/requests",
                    {"length": 32, "class": "best-effort"},
                )
                statuses.append((status, payload["status"]))
            # Interactive is not subject to the best-effort limit.
            for _ in range(4):
                status, payload = await http_json(
                    host, port, "POST", "/v1/requests",
                    {"length": 32, "class": "interactive"},
                )
                statuses.append((status, payload["status"]))
            # An unregistered class is a client error, not a shed.
            bad_status, bad_payload = await http_json(
                host, port, "POST", "/v1/requests",
                {"length": 32, "class": "platinum"},
            )
            _, stats = await http_json(host, port, "POST", "/shutdown")
            await server.serve_until_shutdown()
            return statuses, (bad_status, bad_payload), stats
        finally:
            await server.close()

    statuses, (bad_status, bad_payload), stats = asyncio.run(scenario())
    best_effort = statuses[:5]
    assert best_effort.count((200, "queued")) == 2
    assert best_effort.count((429, "shed")) == 3
    assert statuses[5:] == [(200, "queued")] * 4
    assert bad_status == 400
    assert "request-class" in bad_payload["error"]
    classes = stats["classes"]
    assert classes["best-effort"]["shed"] == 3
    assert classes["best-effort"]["shed_admission"] == 3
    assert classes["interactive"]["shed"] == 0


def test_untagged_replay_of_validation_trace_keeps_classless_stats():
    """The tagging is opt-in: the raw trace still yields no classes block."""
    entries = load_validation_trace()
    report = simulate_trace(entries)
    assert report.class_summaries is None
    assert "classes" not in report.to_dict()
    assert report.num_completed == 63  # the pinned baseline, untouched
