"""Tests for the sequence-length distribution generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.length_distributions import (
    FIG5_EXAMPLE_LENGTHS,
    length_statistics,
    padding_overhead,
    sample_lengths,
)
from repro.transformer.configs import MRPC, RTE, SQUAD_V11


class TestSampleLengths:
    def test_fig5_example_batch_matches_paper(self):
        assert FIG5_EXAMPLE_LENGTHS == (140, 100, 82, 78, 72)

    def test_deterministic_for_same_seed(self):
        a = sample_lengths(SQUAD_V11, 100, seed=5)
        b = sample_lengths(SQUAD_V11, 100, seed=5)
        assert np.array_equal(a, b)

    def test_lengths_respect_bounds(self):
        for dataset in (SQUAD_V11, RTE, MRPC):
            lengths = sample_lengths(dataset, 500)
            assert lengths.min() >= dataset.min_length
            assert lengths.max() <= dataset.max_length

    def test_mean_close_to_table1_average(self):
        for dataset in (SQUAD_V11, RTE, MRPC):
            lengths = sample_lengths(dataset, 3000)
            assert lengths.mean() == pytest.approx(dataset.avg_length, rel=0.15)

    def test_maximum_is_reached(self):
        lengths = sample_lengths(SQUAD_V11, 64)
        assert lengths.max() == SQUAD_V11.max_length

    def test_dataset_lookup_by_name(self):
        lengths = sample_lengths("mrpc", 10)
        assert lengths.max() <= MRPC.max_length

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            sample_lengths(SQUAD_V11, 0)

    def test_distribution_is_right_skewed_for_squad(self):
        lengths = sample_lengths(SQUAD_V11, 3000)
        assert np.median(lengths) < lengths.mean()


class TestStatisticsAndOverhead:
    def test_length_statistics_fields(self):
        stats = length_statistics(np.array([10, 20, 30]))
        assert stats["min"] == 10
        assert stats["max"] == 30
        assert stats["avg"] == 20
        assert stats["max_avg_ratio"] == pytest.approx(1.5)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            length_statistics(np.array([]))
        with pytest.raises(ValueError):
            padding_overhead(np.array([]))

    def test_padding_overhead_formula(self):
        assert padding_overhead(np.array([50, 100])) == pytest.approx(200 / 150)

    def test_padding_overhead_with_fixed_target(self):
        assert padding_overhead(np.array([50, 100]), pad_to=200) == pytest.approx(400 / 150)

    def test_uniform_batch_has_no_overhead(self):
        assert padding_overhead(np.array([64, 64, 64])) == pytest.approx(1.0)

    def test_squad_padding_overhead_is_large(self):
        lengths = sample_lengths(SQUAD_V11, 1000)
        assert padding_overhead(lengths, pad_to=SQUAD_V11.max_length) > 3.0

    @given(st.integers(1, 200), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_sampling_always_within_bounds(self, count, seed):
        lengths = sample_lengths(RTE, count, seed=seed)
        assert lengths.shape == (count,)
        assert lengths.min() >= RTE.min_length
        assert lengths.max() <= RTE.max_length
