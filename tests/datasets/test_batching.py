"""Edge-case tests for the batching utilities feeding the serving layers."""

from __future__ import annotations

import pytest

from repro.datasets.batching import make_batches, sorted_batches
from repro.datasets.length_distributions import sample_lengths
from repro.transformer.configs import MRPC, RTE


class TestEmptyStream:
    def test_make_batches_of_nothing_is_empty(self):
        assert make_batches([], batch_size=16) == []

    def test_sorted_batches_of_nothing_is_empty(self):
        assert sorted_batches([], batch_size=16) == []

    def test_drop_last_on_empty_stream(self):
        assert make_batches([], batch_size=16, drop_last=True) == []


class TestBatchSizeLargerThanStream:
    def test_single_partial_batch_kept_by_default(self):
        batches = make_batches([30, 40, 50], batch_size=16)
        assert batches == [[30, 40, 50]]

    def test_drop_last_discards_the_partial_batch(self):
        assert make_batches([30, 40, 50], batch_size=16, drop_last=True) == []

    def test_sorted_batches_partial_batch_is_sorted(self):
        assert sorted_batches([30, 50, 40], batch_size=16) == [[50, 40, 30]]

    def test_batch_size_must_be_positive(self):
        with pytest.raises(ValueError):
            make_batches([1, 2, 3], batch_size=0)


class TestSeedDeterminism:
    def test_same_seed_gives_identical_batched_stream(self):
        a = make_batches(sample_lengths(MRPC, 48, seed=123), batch_size=16)
        b = make_batches(sample_lengths(MRPC, 48, seed=123), batch_size=16)
        assert a == b

    def test_different_seeds_give_different_streams(self):
        a = make_batches(sample_lengths(RTE, 48, seed=123), batch_size=16)
        b = make_batches(sample_lengths(RTE, 48, seed=124), batch_size=16)
        assert a != b

    def test_global_sort_is_deterministic_too(self):
        a = sorted_batches(sample_lengths(RTE, 48, seed=7), batch_size=16)
        b = sorted_batches(sample_lengths(RTE, 48, seed=7), batch_size=16)
        assert a == b
        flattened = [length for batch in a for length in batch]
        assert flattened == sorted(flattened, reverse=True)
