"""Tests for synthetic corpora, proxy tasks and batching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sparse_attention import make_sparse_attention_impl
from repro.datasets.batching import make_batches, sorted_batches
from repro.datasets.synthetic import (
    CLS_TOKEN_ID,
    SEP_TOKEN_ID,
    generate_corpus,
    generate_token_sequence,
)
from repro.datasets.tasks import build_proxy_task, evaluate_model_on_task
from repro.transformer.configs import MRPC, SQUAD_V11
from repro.transformer.model import TransformerModel


class TestTokenGeneration:
    def test_exact_length(self, rng, tiny_config):
        seq = generate_token_sequence(37, tiny_config.vocab_size, rng)
        assert seq.length == 37
        assert seq.token_ids.shape == (37,)

    def test_special_token_structure(self, rng, tiny_config):
        seq = generate_token_sequence(20, tiny_config.vocab_size, rng)
        assert seq.token_ids[0] == CLS_TOKEN_ID
        assert seq.token_ids[-1] == SEP_TOKEN_ID
        assert np.sum(seq.token_ids == SEP_TOKEN_ID) == 2  # sentence-pair input

    def test_segment_ids_split_at_separator(self, rng, tiny_config):
        seq = generate_token_sequence(30, tiny_config.vocab_size, rng)
        assert seq.segment_ids[0] == 0
        assert seq.segment_ids[-1] == 1

    def test_single_segment_mode(self, rng, tiny_config):
        seq = generate_token_sequence(20, tiny_config.vocab_size, rng, two_segments=False)
        assert np.all(seq.segment_ids == 0)
        assert np.sum(seq.token_ids == SEP_TOKEN_ID) == 1

    def test_tokens_within_vocabulary(self, rng, tiny_config):
        seq = generate_token_sequence(50, tiny_config.vocab_size, rng)
        assert seq.token_ids.max() < tiny_config.vocab_size
        assert seq.token_ids.min() >= 0

    def test_too_short_sequence_rejected(self, rng, tiny_config):
        with pytest.raises(ValueError):
            generate_token_sequence(3, tiny_config.vocab_size, rng)


class TestCorpus:
    def test_corpus_size_and_determinism(self, tiny_config):
        a = generate_corpus(MRPC, tiny_config, 10, seed=3)
        b = generate_corpus(MRPC, tiny_config, 10, seed=3)
        assert len(a) == 10
        assert all(np.array_equal(x.token_ids, y.token_ids) for x, y in zip(a, b))

    def test_length_cap_applied(self, tiny_config):
        corpus = generate_corpus(SQUAD_V11, tiny_config, 20, max_length_cap=64)
        assert max(seq.length for seq in corpus) <= 64

    def test_lengths_respect_model_max_position(self, tiny_config):
        corpus = generate_corpus(SQUAD_V11, tiny_config, 20)
        assert max(seq.length for seq in corpus) <= tiny_config.max_position


class TestProxyTasks:
    def test_classification_task_for_mrpc(self, tiny_model):
        task = build_proxy_task(MRPC, tiny_model, num_examples=4, max_length_cap=48)
        assert task.task_type == "classification"
        assert len(task) == 4
        assert all(example.label in (0, 1) for example in task.examples)

    def test_span_task_for_squad(self, tiny_model):
        task = build_proxy_task(SQUAD_V11, tiny_model, num_examples=3, max_length_cap=48)
        assert task.task_type == "span"
        assert all(example.span is not None for example in task.examples)

    def test_teacher_scores_perfectly_on_its_own_labels(self, tiny_model):
        task = build_proxy_task(MRPC, tiny_model, num_examples=4, max_length_cap=48)
        scores = evaluate_model_on_task(tiny_model, task)
        assert scores["score"] == pytest.approx(100.0)

    def test_sparse_teacher_rejected(self, tiny_model):
        sparse = tiny_model.with_attention(make_sparse_attention_impl(top_k=4))
        with pytest.raises(ValueError):
            build_proxy_task(MRPC, sparse, num_examples=2)

    def test_empty_task_rejected(self, tiny_model):
        task = build_proxy_task(MRPC, tiny_model, num_examples=2, max_length_cap=48)
        task.examples = []
        with pytest.raises(ValueError):
            evaluate_model_on_task(tiny_model, task)

    def test_aggressive_sparsity_degrades_span_score(self, tiny_config):
        teacher = TransformerModel(tiny_config, seed=2)
        task = build_proxy_task(SQUAD_V11, teacher, num_examples=5, max_length_cap=96, seed=2)
        sparse = teacher.with_attention(make_sparse_attention_impl(top_k=2, quant_bits=1))
        scores = evaluate_model_on_task(sparse, task)
        assert scores["score"] < 100.0

    def test_task_lengths_exposed(self, tiny_model):
        task = build_proxy_task(MRPC, tiny_model, num_examples=4, max_length_cap=48)
        assert len(task.lengths) == 4
        assert all(length >= 8 for length in task.lengths)


class TestBatching:
    def test_make_batches_sizes(self):
        batches = make_batches(list(range(10)), batch_size=4)
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_drop_last(self):
        batches = make_batches(list(range(10)), batch_size=4, drop_last=True)
        assert [len(b) for b in batches] == [4, 4]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            make_batches([1, 2], batch_size=0)

    def test_sorted_batches_are_descending(self):
        batches = sorted_batches([5, 100, 30, 70, 10, 60], batch_size=3)
        assert batches[0] == [100, 70, 60]
        assert batches[1] == [30, 10, 5]

    def test_default_batch_size_is_sixteen(self):
        batches = make_batches(list(range(40)))
        assert len(batches[0]) == 16
