"""Tests for the run-everything experiment runner."""

from __future__ import annotations

import pytest

from repro.evaluation.runner import run_all_experiments


class TestRunner:
    @pytest.fixture(scope="class")
    def reports(self, tmp_path_factory):
        output_dir = tmp_path_factory.mktemp("reports")
        return output_dir, run_all_experiments(output_dir=output_dir)

    def test_all_fast_experiments_present(self, reports):
        _, collected = reports
        assert set(collected) == {"fig1", "table1", "fig5", "fig7a", "fig7b", "table2"}

    def test_reports_are_rendered(self, reports):
        _, collected = reports
        for report in collected.values():
            assert report.text.strip()
            assert report.result is not None

    def test_files_written(self, reports):
        output_dir, collected = reports
        for name in collected:
            path = output_dir / f"{name}.txt"
            assert path.exists()
            assert path.read_text() == collected[name].text

    def test_fig6_is_opt_in(self, reports):
        _, collected = reports
        assert "fig6" not in collected

    def test_runner_without_output_dir(self):
        collected = run_all_experiments()
        assert "fig7a" in collected
