"""Serving-side energy accounting in the Table 2 harness.

The planner ranks fleets by J/Mreq taken from the serving report's energy
total; these tests pin that the total is exactly the sum of the per-device
rows even on a heterogeneous fleet mixing FPGA, GPU, and CPU platforms.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_report
from repro.experiments.spec import run_experiment

_HETEROGENEOUS = ("sparse-fpga", "gpu-rtx6000", "cpu-xeon")


@pytest.fixture(scope="module")
def table2():
    return run_experiment(
        "table2",
        serving_dataset="mrpc",
        serving_devices=_HETEROGENEOUS,
        serving_requests=24,
        batch_size=8,
    )


class TestHeterogeneousServingEnergy:
    def test_one_row_per_device(self, table2):
        assert [row["device"] for row in table2.serving] == list(_HETEROGENEOUS)

    def test_per_device_joules_sum_to_fleet_total(self, table2):
        per_device = [row["energy_joules"] for row in table2.serving]
        assert all(energy is not None and energy > 0 for energy in per_device)
        # The rendered rows round to mJ; the fleet total is exact, so the sum
        # must match to rounding tolerance only.
        assert sum(per_device) == pytest.approx(
            table2.serving_total_energy_joules, abs=1e-2
        )

    def test_total_present_in_payload(self):
        report = run_report(
            "table2",
            {
                "serving_dataset": "mrpc",
                "serving_devices": _HETEROGENEOUS,
                "serving_requests": 24,
                "batch_size": 8,
            },
        )
        payload = report.payload["result"]
        assert payload["serving_total_energy_joules"] > 0
        rows = payload["serving"]
        assert sum(row["energy_joules"] for row in rows) == pytest.approx(
            payload["serving_total_energy_joules"], abs=1e-2
        )
        assert "fleet total" in report.text

    def test_closed_batch_table_unaffected(self, table2):
        baseline = run_experiment("table2")
        assert baseline.serving == []
        assert baseline.serving_total_energy_joules is None
        assert [r.platform for r in baseline.rows] == [r.platform for r in table2.rows]
