"""Tests for the per-figure/table experiment harnesses (fast configurations)."""

from __future__ import annotations

import pytest

from repro.evaluation.fig1_breakdown import run_fig1_breakdown
from repro.evaluation.fig5_timeline import run_fig5_schedule
from repro.evaluation.fig6_accuracy import reduced_config, run_fig6_accuracy
from repro.evaluation.fig7_throughput import run_fig7_throughput
from repro.evaluation.report import format_key_values, format_table
from repro.evaluation.table1_models import run_table1
from repro.evaluation.table2_energy import run_table2_energy
from repro.transformer.configs import BERT_BASE, BERT_LARGE


class TestFig1:
    def test_time_mode_attention_share_matches_paper_claim(self):
        result = run_fig1_breakdown()
        # "around 60% of the time is spent in the self-attention workflow"
        assert 50.0 <= result.attention_share_percent <= 70.0

    def test_flops_mode_differs_from_time_mode(self):
        time_share = run_fig1_breakdown(mode="time").attention_share_percent
        flops_share = run_fig1_breakdown(mode="flops").attention_share_percent
        assert flops_share < time_share

    def test_shares_sum_to_100(self):
        result = run_fig1_breakdown()
        assert sum(row.share_percent for row in result.rows) == pytest.approx(100.0)

    def test_all_eight_legend_entries_present(self):
        assert len(run_fig1_breakdown().rows) == 8

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            run_fig1_breakdown(mode="latency")

    def test_attention_share_grows_with_sequence_length(self):
        short = run_fig1_breakdown(sequence_length=64).attention_share_percent
        long = run_fig1_breakdown(sequence_length=512).attention_share_percent
        assert long > short


class TestTable1:
    def test_model_rows_cover_all_four_models(self):
        result = run_table1(num_sampled_sequences=500)
        assert {row["model"] for row in result.model_rows} == {
            "DistilBERT",
            "BERT-base",
            "RoBERTa",
            "BERT-large",
        }

    def test_sampled_statistics_close_to_paper(self):
        result = run_table1(num_sampled_sequences=2000)
        for row in result.dataset_rows:
            assert row["avg_sampled"] == pytest.approx(row["avg_paper"], rel=0.15)
            assert row["max_sampled"] == row["max_paper"]


class TestFig5:
    @pytest.fixture(scope="class")
    def fig5(self):
        return run_fig5_schedule()

    def test_uses_the_paper_batch(self, fig5):
        assert fig5.lengths == [140, 100, 82, 78, 72]

    def test_length_aware_has_near_full_utilization(self, fig5):
        assert fig5.length_aware.average_utilization > 0.95

    def test_saved_latency_is_positive(self, fig5):
        assert fig5.saved_cycles_vs_sequential > 0
        assert fig5.saved_cycles_vs_padded > 0

    def test_speedups_reported(self, fig5):
        assert fig5.speedup_vs_sequential > 1.5
        assert fig5.speedup_vs_padded > 1.2

    def test_summary_rows(self, fig5):
        rows = fig5.as_rows()
        assert [row["scheduler"] for row in rows] == ["length-aware", "padded", "sequential"]


class TestFig6:
    @pytest.fixture(scope="class")
    def fig6(self):
        # A two-pair, small-corpus configuration keeps the test fast while
        # exercising the full sweep machinery.
        return run_fig6_accuracy(
            pairs=(("distilbert", "mrpc"), ("distilbert", "squad")),
            top_k_values=(50, 30, 10),
            num_examples=4,
            max_length_cap=64,
        )

    def test_baseline_scores_100_by_construction(self, fig6):
        assert all(pair.baseline_score == pytest.approx(100.0) for pair in fig6.pairs)

    def test_all_requested_k_values_present(self, fig6):
        for pair in fig6.pairs:
            assert set(pair.scores_by_k) == {50, 30, 10}

    def test_drops_are_monotone_in_k(self, fig6):
        for pair in fig6.pairs:
            assert pair.drop(10) >= pair.drop(30) - 1e-9
            assert pair.drop(30) >= pair.drop(50) - 1e-9

    def test_aggregates(self, fig6):
        assert fig6.average_drop(10) >= fig6.average_drop(50)
        assert fig6.max_drop(10) >= 0.0

    def test_row_serialization(self, fig6):
        rows = fig6.as_rows()
        assert len(rows) == 2
        assert "top30" in rows[0]

    def test_reduced_config_preserves_family_ordering(self):
        base = reduced_config(BERT_BASE)
        large = reduced_config(BERT_LARGE)
        assert large.num_layers > base.num_layers
        assert large.hidden_dim > base.hidden_dim
        assert base.hidden_dim % base.num_heads == 0


class TestFig7AndTable2:
    @pytest.fixture(scope="class")
    def fig7(self):
        return run_fig7_throughput(panel="end_to_end", batch_size=8)

    def test_proposed_wins_against_every_platform_geomean(self, fig7):
        for speedup in fig7.geomean_speedups().values():
            assert speedup > 1.0

    def test_platform_ordering_matches_paper(self, fig7):
        geomeans = fig7.geomean_speedups()
        assert geomeans["cpu"] > geomeans["jetson_tx2"] > geomeans["rtx6000"]

    def test_geomeans_within_2x_of_paper(self, fig7):
        geomeans = fig7.geomean_speedups()
        for key, paper_value in fig7.paper_geomeans().items():
            assert paper_value / 2.5 <= geomeans[key] <= paper_value * 2.5

    def test_attention_panel_speedups_exceed_end_to_end(self, fig7):
        attention = run_fig7_throughput(panel="attention", batch_size=8)
        assert attention.geomean_speedups()["cpu"] > fig7.geomean_speedups()["cpu"]

    def test_invalid_panel_rejected(self):
        with pytest.raises(ValueError):
            run_fig7_throughput(panel="memory")

    def test_table2_ours_beats_gpu_energy_efficiency_by_4x(self, fig7):
        table2 = run_table2_energy(fig7=fig7)
        ours = table2.row("Ours FPGA")
        gpu = table2.row("GPU RTX 6000")
        assert ours.energy_efficiency_gopj > 4 * gpu.energy_efficiency_gopj

    def test_table2_contains_six_rows(self, fig7):
        table2 = run_table2_energy(fig7=fig7)
        assert len(table2.rows) == 6
        assert table2.paper_rows()["Ours FPGA"]["throughput_gops"] == 3600.0

    def test_table2_unknown_row_lookup_raises(self, fig7):
        table2 = run_table2_energy(fig7=fig7)
        with pytest.raises(KeyError):
            table2.row("TPU v4")


class TestReportRendering:
    def test_format_table_alignment_and_content(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": None}], title="T")
        assert text.startswith("T\n")
        assert "22" in text
        assert text.count("\n") >= 4

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="nothing")

    def test_format_key_values(self):
        text = format_key_values({"speedup": 2.5999, "platform": "cpu"}, title="geo")
        assert "geo" in text
        assert "2.6" in text
        assert "cpu" in text
