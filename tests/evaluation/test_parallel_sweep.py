"""Parallel sweep execution: determinism and knob plumbing."""

from __future__ import annotations

import json

import pytest

from repro.experiments import run_report

#: One dataset, two load points, few requests: enough to cross the process
#: boundary without making CI slow.
_SMALL = {
    "datasets": ("mrpc",),
    "load_fractions": (0.5, 1.1),
    "requests": 32,
    "batch_size": 8,
}


@pytest.mark.parametrize("jobs", [2])
def test_parallel_sweep_matches_serial_byte_for_byte(jobs):
    serial = run_report("serving-sweep", {**_SMALL, "jobs": 1})
    parallel = run_report("serving-sweep", {**_SMALL, "jobs": jobs})
    # The config payload records the jobs knob; everything else -- including
    # the replayed schedule-cache statistics -- must be byte-identical.
    assert json.dumps(serial.payload["result"], indent=2) == json.dumps(
        parallel.payload["result"], indent=2
    )
    assert serial.payload["config"]["jobs"] == 1
    assert parallel.payload["config"]["jobs"] == jobs


def test_sweep_reports_cache_hit_rate_and_bucket():
    report = run_report("serving-sweep", _SMALL)
    result = report.payload["result"]
    assert result["cache_length_bucket"] == 16  # sweep default: quantized
    assert result["schedule_cache"] is not None
    assert 0.0 <= result["schedule_cache"]["hit_rate"] <= 1.0
    assert all("cache_hit" in point for point in result["points"])


def test_exact_billing_opt_out():
    report = run_report("serving-sweep", {**_SMALL, "cache_length_bucket": None})
    result = report.payload["result"]
    assert result["cache_length_bucket"] is None
    assert result["schedule_cache"] is not None


def test_jobs_validation():
    with pytest.raises(ValueError, match="jobs"):
        run_report("serving-sweep", {**_SMALL, "jobs": 0})
    with pytest.raises(ValueError, match="cache_length_bucket"):
        run_report("serving-sweep", {**_SMALL, "cache_length_bucket": 0})
