"""Parallel sweep execution: determinism and knob plumbing."""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.evaluation import serving_sweep
from repro.evaluation.env_overrides import (
    ENV_OVERRIDE_VARS,
    apply_env_overrides,
    capture_env_overrides,
)
from repro.experiments import run_report

#: One dataset, two load points, few requests: enough to cross the process
#: boundary without making CI slow.
_SMALL = {
    "datasets": ("mrpc",),
    "load_fractions": (0.5, 1.1),
    "requests": 32,
    "batch_size": 8,
}


@pytest.mark.parametrize("jobs", [2])
def test_parallel_sweep_matches_serial_byte_for_byte(jobs):
    serial = run_report("serving-sweep", {**_SMALL, "jobs": 1})
    parallel = run_report("serving-sweep", {**_SMALL, "jobs": jobs})
    # The config payload records the jobs knob; everything else -- including
    # the replayed schedule-cache statistics -- must be byte-identical.
    assert json.dumps(serial.payload["result"], indent=2) == json.dumps(
        parallel.payload["result"], indent=2
    )
    assert serial.payload["config"]["jobs"] == 1
    assert parallel.payload["config"]["jobs"] == jobs


def test_sweep_reports_cache_hit_rate_and_bucket():
    report = run_report("serving-sweep", _SMALL)
    result = report.payload["result"]
    assert result["cache_length_bucket"] == 16  # sweep default: quantized
    assert result["schedule_cache"] is not None
    assert 0.0 <= result["schedule_cache"]["hit_rate"] <= 1.0
    assert all("cache_hit" in point for point in result["points"])


def test_exact_billing_opt_out():
    report = run_report("serving-sweep", {**_SMALL, "cache_length_bucket": None})
    result = report.payload["result"]
    assert result["cache_length_bucket"] is None
    assert result["schedule_cache"] is not None


@pytest.mark.parametrize(
    "name, value",
    [("REPRO_PIPELINE_ENGINE", "reference"), ("REPRO_SCHEDULE_CACHE", "off")],
)
def test_parallel_sweep_honors_env_overrides(monkeypatch, name, value):
    """--jobs N must honor REPRO_* overrides byte-for-byte like a serial run.

    The pool is forced onto a spawn context so workers inherit *nothing*
    through fork -- the submit-time capture / in-worker re-export is the only
    channel that can carry the override across, which is exactly the
    regression under test.  ``REPRO_SCHEDULE_CACHE=off`` is detectable in the
    payload (``schedule_cache`` goes null); the byte-equality assertion then
    pins both overrides.
    """
    monkeypatch.setenv(name, value)
    monkeypatch.setattr(
        serving_sweep, "_MP_CONTEXT", multiprocessing.get_context("spawn")
    )
    serial = run_report("serving-sweep", {**_SMALL, "jobs": 1})
    parallel = run_report("serving-sweep", {**_SMALL, "jobs": 2})
    assert json.dumps(serial.payload["result"], indent=2) == json.dumps(
        parallel.payload["result"], indent=2
    )
    if name == "REPRO_SCHEDULE_CACHE":
        # Proof the override actually reached the workers: with the cache
        # off no run may report cache statistics.
        assert parallel.payload["result"]["schedule_cache"] is None


def test_env_override_capture_roundtrip(monkeypatch):
    """Capture snapshots present *and* absent variables; apply restores both."""
    monkeypatch.setenv("REPRO_PIPELINE_ENGINE", "reference")
    monkeypatch.delenv("REPRO_SCHEDULE_CACHE", raising=False)
    snapshot = capture_env_overrides()
    assert snapshot["REPRO_PIPELINE_ENGINE"] == "reference"
    assert snapshot["REPRO_SCHEDULE_CACHE"] is None
    # Emulate a worker whose environment drifted the other way.
    monkeypatch.delenv("REPRO_PIPELINE_ENGINE")
    monkeypatch.setenv("REPRO_SCHEDULE_CACHE", "off")
    apply_env_overrides(snapshot)
    import os

    assert os.environ.get("REPRO_PIPELINE_ENGINE") == "reference"
    assert "REPRO_SCHEDULE_CACHE" not in os.environ
    assert set(snapshot) == set(ENV_OVERRIDE_VARS)


def test_jobs_validation():
    with pytest.raises(ValueError, match="jobs"):
        run_report("serving-sweep", {**_SMALL, "jobs": 0})
    with pytest.raises(ValueError, match="cache_length_bucket"):
        run_report("serving-sweep", {**_SMALL, "cache_length_bucket": 0})
