"""Equivalence tests for the vectorized Top-k / sparse attention kernels.

The functional path batches every query row (and every head) into single
NumPy calls; these tests pin it against the row-at-a-time reference
implementations that model the hardware: :func:`topk_indices` /
:class:`StreamingTopK` for selection and :func:`fused_attention_row` for the
exact sparse path.  The vectorized kernels must select exactly the same
candidates and reproduce the reference probabilities and contexts to float
round-off.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.loop_fusion import fused_attention_row
from repro.core.quantization import quantize
from repro.core.sparse_attention import (
    SparseAttentionConfig,
    _batched_sparse_heads,
    approximate_scores,
    select_candidates,
    sparse_attention_head,
    sparse_multi_head_attention,
)
from repro.core.topk import StreamingTopK, topk_indices, topk_mask, topk_select
from repro.transformer.attention import multi_head_attention


class TestTopkSelect:
    def test_matches_topk_indices_per_row(self, rng):
        scores = rng.normal(size=(40, 64))
        selected = topk_select(scores, 7)
        for row in range(scores.shape[0]):
            reference = topk_indices(scores[row], 7).indices
            assert np.array_equal(np.sort(selected[row]), np.sort(reference))

    def test_ties_break_toward_lower_index(self):
        scores = np.array([[1.0, 3.0, 3.0, 3.0, 0.0]])
        assert np.array_equal(topk_select(scores, 2)[0], [1, 2])

    def test_matches_streaming_unit_on_integer_ties(self, rng):
        scores = rng.integers(-3, 4, size=(12, 30)).astype(np.float64)
        selected = topk_select(scores, 5)
        for row in range(scores.shape[0]):
            unit = StreamingTopK(5)
            for index, value in enumerate(scores[row]):
                unit.push(float(value), index)
            assert np.array_equal(selected[row], unit.result().indices)

    def test_k_clipped_to_row_length(self, rng):
        scores = rng.normal(size=(4, 6))
        assert topk_select(scores, 99).shape == (4, 6)

    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(ValueError):
            topk_select(rng.normal(size=10), 3)
        with pytest.raises(ValueError):
            topk_select(rng.normal(size=(4, 6)), 0)

    @given(
        seq=st.integers(min_value=1, max_value=12),
        keys=st.integers(min_value=1, max_value=20),
        k=st.integers(min_value=1, max_value=25),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_per_row_lexsort(self, seq, keys, k, seed):
        scores = np.random.default_rng(seed).integers(-5, 6, size=(seq, keys))
        selected = topk_select(scores, k)
        for row in range(seq):
            order = np.lexsort((np.arange(keys), -scores[row].astype(np.float64)))
            assert np.array_equal(selected[row], order[: min(k, keys)])


class TestTopkMaskVectorized:
    def test_2d_matches_per_row_reference(self, rng):
        scores = rng.integers(-3, 4, size=(15, 25)).astype(np.float64)
        mask = topk_mask(scores, 6)
        for row in range(scores.shape[0]):
            reference = np.zeros(scores.shape[1], dtype=bool)
            reference[topk_indices(scores[row], 6).indices] = True
            assert np.array_equal(mask[row], reference)


def _reference_sparse_head(q, k, v, config, key_mask=None):
    """Row-at-a-time sparse head built from the hardware-model kernels."""
    seq, d = q.shape
    approx = approximate_scores(q, k, config.quant_bits, config.use_lut)
    candidates = select_candidates(approx, config.top_k, key_mask)
    context = np.zeros((seq, d), dtype=np.float64)
    probs = np.zeros((seq, seq), dtype=np.float64)
    for i, selected in enumerate(candidates):
        if selected.size == 0:
            continue
        result = fused_attention_row(q[i], k[selected], v[selected], mask=None)
        context[i] = result.context
        probs[i, selected] = result.probs
    return candidates, probs, context


class TestSparseHeadVectorized:
    @pytest.mark.parametrize(
        "seq,dim,top_k,quant_bits,masked",
        [
            (20, 16, 5, 4, False),
            (33, 8, 30, 1, True),
            (12, 8, 12, 8, False),
            (40, 16, 8, 4, True),
        ],
    )
    def test_matches_fused_row_reference(self, rng, seq, dim, top_k, quant_bits, masked):
        q = rng.normal(size=(seq, dim))
        k = rng.normal(size=(seq, dim))
        v = rng.normal(size=(seq, dim))
        key_mask = None
        if masked:
            key_mask = np.ones(seq, dtype=bool)
            key_mask[-4:] = False
        config = SparseAttentionConfig(top_k=top_k, quant_bits=quant_bits)
        result = sparse_attention_head(q, k, v, config, key_mask)
        candidates, probs, context = _reference_sparse_head(q, k, v, config, key_mask)
        for got, expected in zip(result.selected, candidates):
            assert np.array_equal(got, expected)
        assert np.allclose(result.probs, probs, atol=1e-12)
        assert np.allclose(result.context, context, atol=1e-12)

    def test_batched_heads_match_per_head_path(self, rng):
        num_heads, seq, dim = 4, 24, 8
        qh = rng.normal(size=(num_heads, seq, dim))
        kh = rng.normal(size=(num_heads, seq, dim))
        vh = rng.normal(size=(num_heads, seq, dim))
        key_mask = np.ones(seq, dtype=bool)
        key_mask[-3:] = False
        for quant_bits in (1, 4):
            config = SparseAttentionConfig(top_k=6, quant_bits=quant_bits)
            contexts, probs, approx = _batched_sparse_heads(qh, kh, vh, config, key_mask)
            for h in range(num_heads):
                reference = sparse_attention_head(qh[h], kh[h], vh[h], config, key_mask)
                assert np.array_equal(approx[h], reference.approx_scores.astype(np.float64))
                assert np.allclose(probs[h], reference.probs, atol=1e-12)
                assert np.allclose(contexts[h], reference.context, atol=1e-12)

    def test_batched_quantization_scales_match_per_head(self, rng):
        stacked = rng.normal(size=(3, 10, 6))
        for bits in (1, 4, 8):
            from repro.core.sparse_attention import _quantize_heads

            codes = _quantize_heads(stacked, bits)
            for h in range(stacked.shape[0]):
                reference = quantize(stacked[h], bits)
                assert np.array_equal(codes[h], reference.values.astype(np.float64))

    def test_multi_head_lut_and_batched_paths_agree(self, rng, tiny_weights):
        seq, hidden, num_heads = 16, 64, 4
        hidden_states = rng.normal(size=(seq, hidden))
        weights = tiny_weights.layers[0].attention
        batched = sparse_multi_head_attention(
            hidden_states,
            weights,
            num_heads,
            config=SparseAttentionConfig(top_k=4, quant_bits=4, use_lut=False),
        )
        lut = sparse_multi_head_attention(
            hidden_states,
            weights,
            num_heads,
            config=SparseAttentionConfig(top_k=4, quant_bits=4, use_lut=True),
        )
        assert np.array_equal(batched.scores, lut.scores)
        assert np.allclose(batched.probs, lut.probs, atol=1e-12)
        assert np.allclose(batched.output, lut.output, atol=1e-12)

    def test_full_top_k_matches_dense_attention(self, rng, tiny_weights):
        seq, hidden, num_heads = 12, 64, 4
        hidden_states = rng.normal(size=(seq, hidden))
        weights = tiny_weights.layers[0].attention
        sparse = sparse_multi_head_attention(
            hidden_states,
            weights,
            num_heads,
            config=SparseAttentionConfig(top_k=seq, quant_bits=8),
        )
        dense = multi_head_attention(hidden_states, weights, num_heads)
        assert np.allclose(sparse.output, dense.output, atol=1e-6)
