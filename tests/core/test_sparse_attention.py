"""Tests for the quantized Top-k sparse attention operator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sparse_attention import (
    SparseAttentionConfig,
    approximate_scores,
    make_sparse_attention_impl,
    select_candidates,
    sparse_attention_head,
    sparse_multi_head_attention,
)
from repro.transformer.attention import multi_head_attention


def _random_qkv(rng, seq=20, dim=16):
    return (
        rng.normal(size=(seq, dim)),
        rng.normal(size=(seq, dim)),
        rng.normal(size=(seq, dim)),
    )


class TestSparseAttentionConfig:
    def test_defaults_match_paper_sweet_spot(self):
        config = SparseAttentionConfig()
        assert config.top_k == 30
        assert config.quant_bits in (1, 4)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            SparseAttentionConfig(top_k=0)
        with pytest.raises(ValueError):
            SparseAttentionConfig(quant_bits=0)
        with pytest.raises(ValueError):
            SparseAttentionConfig(unroll=0)


class TestApproximateScores:
    def test_shape(self, rng):
        q, k, _ = _random_qkv(rng)
        assert approximate_scores(q, k, 4).shape == (20, 20)

    def test_lut_path_matches_integer_matmul(self, rng):
        q, k, _ = _random_qkv(rng, seq=8, dim=6)
        assert np.array_equal(
            approximate_scores(q, k, 4, use_lut=True),
            approximate_scores(q, k, 4, use_lut=False),
        )

    def test_ranking_correlates_with_exact_scores(self, rng):
        q, k, _ = _random_qkv(rng, seq=30, dim=32)
        exact = q @ k.T
        approx = approximate_scores(q, k, 4)
        # Spearman-like check: the top-5 approximate candidates of each row
        # recover most of the top-5 exact candidates.
        overlaps = []
        for row in range(30):
            top_exact = set(np.argsort(exact[row])[-5:])
            top_approx = set(np.argsort(approx[row])[-5:])
            overlaps.append(len(top_exact & top_approx) / 5)
        assert np.mean(overlaps) > 0.7

    def test_one_bit_scores_are_bounded_by_dim(self, rng):
        q, k, _ = _random_qkv(rng, seq=10, dim=12)
        approx = approximate_scores(q, k, 1)
        assert np.all(np.abs(approx) <= 12)


class TestSelectCandidates:
    def test_selects_top_k_per_row(self, rng):
        scores = rng.integers(-50, 50, size=(6, 40))
        selected = select_candidates(scores, 10)
        assert len(selected) == 6
        assert all(len(s) == 10 for s in selected)

    def test_indices_sorted_ascending(self, rng):
        scores = rng.integers(-50, 50, size=(3, 20))
        for indices in select_candidates(scores, 5):
            assert np.all(np.diff(indices) > 0)

    def test_padding_keys_never_selected(self, rng):
        scores = rng.integers(-50, 50, size=(4, 10))
        key_mask = np.array([True] * 6 + [False] * 4)
        for indices in select_candidates(scores, 8, key_mask):
            assert np.all(indices < 6)
            assert len(indices) == 6  # clipped to the number of valid keys

    def test_fully_masked_row_returns_empty(self, rng):
        scores = rng.integers(0, 5, size=(2, 4))
        selected = select_candidates(scores, 2, np.zeros(4, dtype=bool))
        assert all(len(s) == 0 for s in selected)

    def test_requires_2d_scores(self):
        with pytest.raises(ValueError):
            select_candidates(np.zeros(4), 2)

    def test_mask_shape_validated(self, rng):
        with pytest.raises(ValueError):
            select_candidates(rng.normal(size=(2, 4)), 2, np.ones(3, dtype=bool))


class TestSparseAttentionHead:
    def test_full_k_recovers_dense_attention(self, rng):
        q, k, v = _random_qkv(rng, seq=12, dim=8)
        config = SparseAttentionConfig(top_k=12, quant_bits=8)
        result = sparse_attention_head(q, k, v, config)
        dense = (lambda s: (np.exp(s - s.max(-1, keepdims=True)) / np.exp(s - s.max(-1, keepdims=True)).sum(-1, keepdims=True)))(
            q @ k.T / np.sqrt(8)
        )
        assert np.allclose(result.probs, dense, atol=1e-8)
        assert np.allclose(result.context, dense @ v, atol=1e-8)

    def test_output_shapes(self, rng):
        q, k, v = _random_qkv(rng)
        result = sparse_attention_head(q, k, v, SparseAttentionConfig(top_k=5))
        assert result.context.shape == (20, 16)
        assert result.probs.shape == (20, 20)
        assert len(result.selected) == 20

    def test_row_probabilities_sum_to_one(self, rng):
        q, k, v = _random_qkv(rng)
        result = sparse_attention_head(q, k, v, SparseAttentionConfig(top_k=6))
        assert np.allclose(result.probs.sum(axis=1), 1.0)

    def test_unselected_positions_have_zero_probability(self, rng):
        q, k, v = _random_qkv(rng)
        result = sparse_attention_head(q, k, v, SparseAttentionConfig(top_k=4))
        assert np.all((result.probs > 0).sum(axis=1) <= 4)

    def test_sparsity_statistics(self, rng):
        q, k, v = _random_qkv(rng, seq=40, dim=16)
        result = sparse_attention_head(q, k, v, SparseAttentionConfig(top_k=8))
        stats = result.stats
        assert stats.selected_candidates == 40 * 8
        assert stats.sparsity == pytest.approx(1 - 8 / 40)
        assert stats.flop_reduction > 1.0

    def test_top30_reduces_attention_complexity_by_80_percent(self, rng):
        # Section 5.1: "With a Top-30 sparse attention, the attention
        # computation complexity can be reduced by more than 80% in average"
        # for the evaluated datasets (average length >= 150 here).
        q, k, v = _random_qkv(rng, seq=160, dim=16)
        result = sparse_attention_head(q, k, v, SparseAttentionConfig(top_k=30))
        assert result.stats.sparsity > 0.8

    def test_key_mask_respected(self, rng):
        q, k, v = _random_qkv(rng, seq=10, dim=8)
        key_mask = np.array([True] * 7 + [False] * 3)
        result = sparse_attention_head(q, k, v, SparseAttentionConfig(top_k=5), key_mask)
        assert np.all(result.probs[:, 7:] == 0.0)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            sparse_attention_head(
                rng.normal(size=(5, 4)),
                rng.normal(size=(6, 4)),
                rng.normal(size=(5, 4)),
                SparseAttentionConfig(top_k=2),
            )


class TestSparseMultiHeadAttention:
    def test_output_matches_dense_when_k_covers_sequence(self, rng, tiny_weights):
        layer = tiny_weights.layers[0].attention
        hidden = rng.normal(size=(10, 64))
        dense = multi_head_attention(hidden, layer, num_heads=4)
        config = SparseAttentionConfig(top_k=10, quant_bits=8)
        sparse = sparse_multi_head_attention(hidden, layer, 4, config=config)
        assert np.allclose(sparse.output, dense.output, atol=1e-6)

    def test_smaller_k_gives_larger_deviation(self, rng, tiny_weights):
        layer = tiny_weights.layers[0].attention
        hidden = rng.normal(size=(24, 64))
        dense = multi_head_attention(hidden, layer, num_heads=4)
        deviations = []
        for k in (24, 8, 2):
            sparse = sparse_multi_head_attention(
                hidden, layer, 4, config=SparseAttentionConfig(top_k=k, quant_bits=4)
            )
            deviations.append(np.linalg.norm(sparse.output - dense.output))
        assert deviations[0] <= deviations[1] <= deviations[2]

    def test_padding_mask_zeroes_padded_probabilities(self, rng, tiny_weights):
        layer = tiny_weights.layers[0].attention
        hidden = rng.normal(size=(12, 64))
        mask = np.array([True] * 9 + [False] * 3)
        sparse = sparse_multi_head_attention(
            hidden, layer, 4, mask=mask, config=SparseAttentionConfig(top_k=5)
        )
        assert np.all(sparse.probs[:, :, 9:] == 0.0)

    def test_make_impl_carries_config(self):
        impl = make_sparse_attention_impl(top_k=17, quant_bits=1)
        assert impl.config.top_k == 17
        assert impl.config.quant_bits == 1

    def test_impl_signature_compatible_with_encoder(self, rng, tiny_weights):
        impl = make_sparse_attention_impl(top_k=6)
        hidden = rng.normal(size=(10, 64))
        out = impl(hidden, tiny_weights.layers[0].attention, 4, None)
        assert out.output.shape == (10, 64)


class TestSparseAttentionProperties:
    @given(st.integers(2, 16), st.integers(1, 16), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_probabilities_always_normalized(self, seq, top_k, seed):
        """Sparse softmax rows always sum to 1 (over the selected candidates)."""
        rng = np.random.default_rng(seed)
        q = rng.normal(size=(seq, 8))
        k = rng.normal(size=(seq, 8))
        v = rng.normal(size=(seq, 8))
        result = sparse_attention_head(q, k, v, SparseAttentionConfig(top_k=top_k))
        assert np.allclose(result.probs.sum(axis=1), 1.0, atol=1e-9)

    @given(st.integers(4, 20), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_selected_count_never_exceeds_k(self, seq, seed):
        rng = np.random.default_rng(seed)
        q = rng.normal(size=(seq, 8))
        k = rng.normal(size=(seq, 8))
        v = rng.normal(size=(seq, 8))
        config = SparseAttentionConfig(top_k=5)
        result = sparse_attention_head(q, k, v, config)
        for indices in result.selected:
            assert len(indices) <= 5
