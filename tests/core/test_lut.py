"""Tests for the look-up-table integer multiply model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lut import MultiplyLUT, lut_matmul


class TestMultiplyLUT:
    def test_paper_table_size_for_four_bits(self):
        # "if we multiply two 4-bit integers, the look-up table only needs 256 entries"
        assert MultiplyLUT(4).num_entries == 256

    def test_table_entries_are_exact_products(self):
        lut = MultiplyLUT(3)
        for a in range(-3, 4):
            for b in range(-3, 4):
                assert lut.multiply(np.array(a), np.array(b)) == a * b

    def test_elementwise_multiply_matches_numpy(self, rng):
        lut = MultiplyLUT(4)
        a = rng.integers(-7, 8, size=(5, 6))
        b = rng.integers(-7, 8, size=(5, 6))
        assert np.array_equal(lut.multiply(a, b), a * b)

    def test_matmul_matches_numpy(self, rng):
        lut = MultiplyLUT(4)
        a = rng.integers(-7, 8, size=(4, 9))
        b = rng.integers(-7, 8, size=(9, 3))
        assert np.array_equal(lut.matmul(a, b), a @ b)

    def test_mixed_widths(self, rng):
        lut = MultiplyLUT(4, 2)
        a = rng.integers(-7, 8, size=8)
        b = rng.integers(-1, 2, size=8)
        assert np.array_equal(lut.multiply(a, b), a * b)

    def test_out_of_range_operand_rejected(self):
        lut = MultiplyLUT(4)
        with pytest.raises(ValueError):
            lut.multiply(np.array([8]), np.array([1]))
        with pytest.raises(ValueError):
            lut.multiply(np.array([1]), np.array([-8]))

    def test_matmul_shape_mismatch_rejected(self):
        lut = MultiplyLUT(4)
        with pytest.raises(ValueError):
            lut.matmul(np.zeros((2, 3), dtype=int), np.zeros((4, 2), dtype=int))

    def test_storage_bits_scale_with_entries(self):
        assert MultiplyLUT(4).storage_bits() == 256 * 8
        assert MultiplyLUT(2).storage_bits() == 16 * 4

    def test_invalid_bit_width_rejected(self):
        with pytest.raises(ValueError):
            MultiplyLUT(0)

    def test_convenience_wrapper(self, rng):
        a = rng.integers(-7, 8, size=(3, 4))
        b = rng.integers(-7, 8, size=(4, 5))
        assert np.array_equal(lut_matmul(a, b, bits=4), a @ b)


class TestLutProperties:
    @given(
        st.integers(2, 5),
        st.integers(1, 6),
        st.integers(1, 6),
        st.integers(1, 6),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_matmul_always_exact(self, bits, m, k, n, seed):
        """LUT-based matmul is bit-exact for any in-range operands."""
        rng = np.random.default_rng(seed)
        levels = 2 ** (bits - 1) - 1
        a = rng.integers(-levels, levels + 1, size=(m, k))
        b = rng.integers(-levels, levels + 1, size=(k, n))
        assert np.array_equal(MultiplyLUT(bits).matmul(a, b), a @ b)
