"""Tests for the hardware-style Top-k selection unit."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.topk import StreamingTopK, topk_indices, topk_mask


class TestTopKIndices:
    def test_selects_largest_values(self):
        scores = np.array([0.1, 5.0, -2.0, 3.0, 4.0])
        result = topk_indices(scores, 3)
        assert set(result.indices) == {1, 4, 3}

    def test_values_sorted_descending(self):
        scores = np.array([0.3, 0.9, 0.1, 0.5])
        result = topk_indices(scores, 3)
        assert list(result.values) == sorted(result.values, reverse=True)

    def test_ties_prefer_lower_index(self):
        scores = np.array([1.0, 2.0, 2.0, 0.5])
        result = topk_indices(scores, 2)
        assert list(result.indices) == [1, 2]

    def test_k_clipped_to_length(self):
        result = topk_indices(np.array([1.0, 2.0]), 10)
        assert len(result) == 2

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            topk_indices(np.array([1.0]), 0)

    def test_two_dimensional_input_rejected(self):
        with pytest.raises(ValueError):
            topk_indices(np.zeros((2, 2)), 1)

    def test_paper_fig3_example(self):
        # Fig. 3 step 4: approximate scores (48, 10, 41, -29) select k1 and k3.
        approx = np.array([48.0, 10.0, 41.0, -29.0])
        result = topk_indices(approx, 2)
        assert set(result.indices) == {0, 2}


class TestStreamingTopK:
    def test_matches_vectorized_reference(self, rng):
        scores = rng.normal(size=50)
        unit = StreamingTopK(8)
        for i, value in enumerate(scores):
            unit.push(float(value), i)
        streaming = unit.result()
        reference = topk_indices(scores, 8)
        assert np.array_equal(streaming.indices, reference.indices)
        assert np.allclose(streaming.values, reference.values)

    def test_cycles_equal_elements_streamed(self, rng):
        unit = StreamingTopK(4)
        for i in range(33):
            unit.push(float(rng.normal()), i)
        assert unit.cycles() == 33

    def test_comparisons_are_counted(self):
        unit = StreamingTopK(2)
        for i, value in enumerate([1.0, 2.0, 3.0]):
            unit.push(value, i)
        assert unit.result().comparisons > 0

    def test_fewer_elements_than_k(self):
        unit = StreamingTopK(10)
        unit.push(1.0, 0)
        unit.push(2.0, 1)
        result = unit.result()
        assert len(result) == 2
        assert list(result.indices) == [1, 0]

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            StreamingTopK(0)

    def test_ties_keep_earlier_element(self):
        unit = StreamingTopK(1)
        unit.push(5.0, 0)
        unit.push(5.0, 1)
        assert list(unit.result().indices) == [0]


class TestTopKMask:
    def test_mask_selects_k_entries_per_row(self, rng):
        scores = rng.normal(size=(6, 20))
        mask = topk_mask(scores, 5)
        assert mask.shape == scores.shape
        assert np.all(mask.sum(axis=1) == 5)

    def test_one_dimensional_mask(self):
        mask = topk_mask(np.array([3.0, 1.0, 2.0]), 2)
        assert list(mask) == [True, False, True]

    def test_three_dimensional_rejected(self):
        with pytest.raises(ValueError):
            topk_mask(np.zeros((2, 2, 2)), 1)

    def test_masked_entries_are_the_largest(self, rng):
        scores = rng.normal(size=30)
        mask = topk_mask(scores, 10)
        assert scores[mask].min() >= scores[~mask].max()


class TestTopKProperties:
    @given(
        arrays(np.float64, shape=st.integers(1, 60), elements=st.floats(-1e3, 1e3)),
        st.integers(1, 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_streaming_equals_vectorized(self, scores, k):
        """The cycle-level streaming unit and the vectorized reference agree."""
        unit = StreamingTopK(k)
        for i, value in enumerate(scores):
            unit.push(float(value), i)
        streaming = unit.result()
        reference = topk_indices(scores, k)
        assert np.array_equal(streaming.indices, reference.indices)

    @given(
        arrays(np.float64, shape=st.integers(1, 60), elements=st.floats(-1e3, 1e3)),
        st.integers(1, 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_selected_values_dominate_unselected(self, scores, k):
        result = topk_indices(scores, k)
        selected = set(int(i) for i in result.indices)
        unselected = [scores[i] for i in range(len(scores)) if i not in selected]
        if unselected:
            assert min(scores[i] for i in selected) >= max(unselected)
