"""Unit and property-based tests for the quantization primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.quantization import (
    QuantizedTensor,
    compute_scale,
    dequantize,
    quantization_error,
    quantization_levels,
    quantize,
    quantize_model_tensor,
    quantize_symmetric,
    sign_quantize,
)


class TestQuantizationLevels:
    def test_four_bit_levels_match_paper(self):
        # The paper's Fig. 3 example uses 2^3 - 1 = 7 as the 4-bit level count.
        assert quantization_levels(4) == 7

    def test_eight_bit_levels(self):
        assert quantization_levels(8) == 127

    def test_one_bit_is_sign(self):
        assert quantization_levels(1) == 1

    def test_invalid_bits_raise(self):
        with pytest.raises(ValueError):
            quantization_levels(0)


class TestQuantize:
    def test_values_bounded_by_levels(self, rng):
        x = rng.normal(size=(8, 16))
        q = quantize(x, 4)
        assert np.all(np.abs(q.values) <= 7)
        assert q.bits == 4

    def test_round_trip_error_bounded_by_half_step(self, rng):
        x = rng.normal(size=(32,))
        q = quantize(x, 8)
        recovered = q.dequantize()
        assert np.max(np.abs(recovered - x)) <= 0.5 * q.scale + 1e-12

    def test_max_abs_value_maps_to_max_level(self):
        x = np.array([0.1, -0.77, 0.5])
        q = quantize(x, 4)
        assert np.abs(q.values).max() == 7

    def test_zero_tensor_has_unit_scale(self):
        q = quantize(np.zeros(5), 4)
        assert q.scale == 1.0
        assert np.all(q.values == 0)

    def test_one_bit_is_sign_function(self):
        x = np.array([-2.0, -0.1, 0.0, 0.3, 5.0])
        q = quantize(x, 1)
        assert list(q.values) == [-1, -1, 1, 1, 1]

    def test_sign_quantize_helper(self):
        x = np.array([[1.5, -0.2], [-3.0, 0.0]])
        assert np.array_equal(sign_quantize(x), np.array([[1, -1], [-1, 1]]))

    def test_dequantize_free_function_matches_method(self, rng):
        x = rng.normal(size=10)
        q = quantize(x, 4)
        assert np.array_equal(dequantize(q), q.dequantize())

    def test_quantized_tensor_levels_property(self):
        q = QuantizedTensor(values=np.array([1, -2]), scale=0.5, bits=4)
        assert q.levels == 7

    def test_paper_fig3_scaling_factor(self):
        # The K matrix in Fig. 3 has scaling factor M = 0.77 and each element
        # is multiplied by (2^3 - 1) / 0.77 before rounding.
        k = np.array(
            [
                [0.41, 1.09, 0.11],
                [0.66, 1.88, 0.11],
                [-1.95, 1.13, 1.41],
                [1.48, 1.33, 0.41],
            ]
        )
        q = quantize(k.T, 4)  # per-tensor scale uses the max |value| = 1.95
        assert q.scale == pytest.approx(1.95 / 7)


class TestFakeQuantization:
    def test_symmetric_roundtrip_preserves_shape_and_dtype(self, rng):
        x = rng.normal(size=(3, 5, 7))
        y = quantize_symmetric(x, 8)
        assert y.shape == x.shape
        assert y.dtype == np.float64

    def test_model_tensor_alias(self, rng):
        x = rng.normal(size=(4, 4))
        assert np.array_equal(quantize_model_tensor(x, 8), quantize_symmetric(x, 8))

    def test_error_decreases_with_more_bits(self, rng):
        x = rng.normal(size=1000)
        errors = [quantization_error(x, bits) for bits in (2, 4, 6, 8)]
        assert errors == sorted(errors, reverse=True)

    def test_error_of_empty_tensor_is_zero(self):
        assert quantization_error(np.array([]), 4) == 0.0

    def test_eight_bit_error_is_small(self, rng):
        x = rng.normal(size=500)
        assert quantization_error(x, 8) < 0.05 * np.std(x)


class TestQuantizationProperties:
    @given(
        arrays(np.float64, shape=st.integers(2, 40), elements=st.floats(-100, 100)),
        st.integers(2, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotonicity_preserved(self, x, bits):
        """Quantization is monotone: order of values never inverts (only ties)."""
        q = quantize(x, bits).values
        order = np.argsort(x, kind="stable")
        sorted_q = q[order]
        assert np.all(np.diff(sorted_q) >= 0)

    @given(
        arrays(np.float64, shape=st.integers(1, 40), elements=st.floats(-1e4, 1e4)),
        st.integers(2, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_values_within_levels(self, x, bits):
        q = quantize(x, bits)
        assert np.all(np.abs(q.values) <= quantization_levels(bits))

    @given(arrays(np.float64, shape=st.integers(1, 30), elements=st.floats(-50, 50)))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_error_bounded(self, x):
        q = quantize(x, 6)
        assert np.max(np.abs(q.dequantize() - x)) <= 0.5 * q.scale + 1e-9

    def test_scale_positive_for_nonzero_input(self, rng):
        x = rng.normal(size=64)
        assert compute_scale(x, 4) > 0
