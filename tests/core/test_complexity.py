"""Tests for the operator-complexity accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.complexity import (
    attention_core_flops,
    attention_only_flops,
    encoder_layer_breakdown,
    encoder_layer_flops,
    linear_flops,
    model_flops,
    sparse_attention_core_flops,
    sparse_model_flops,
)
from repro.transformer.configs import BERT_BASE, BERT_LARGE, DISTILBERT


class TestBasicCounts:
    def test_linear_flops_are_two_per_mac(self):
        assert linear_flops(10, 8, 4) == 2 * 10 * 8 * 4

    def test_breakdown_totals_are_consistent(self):
        breakdown = encoder_layer_breakdown(BERT_BASE, 128)
        assert breakdown.total == breakdown.attention_total + breakdown.other_total
        assert breakdown.total == sum(breakdown.as_dict().values())

    def test_layer_flops_equals_breakdown_total(self):
        assert encoder_layer_flops(BERT_BASE, 128) == encoder_layer_breakdown(BERT_BASE, 128).total

    def test_model_flops_scale_with_layers(self):
        assert model_flops(BERT_BASE, 128) == 12 * encoder_layer_flops(BERT_BASE, 128)
        assert model_flops(DISTILBERT, 128) == 6 * encoder_layer_flops(DISTILBERT, 128)

    def test_bert_large_costs_more_than_base(self):
        assert model_flops(BERT_LARGE, 128) > 2 * model_flops(BERT_BASE, 128)


class TestSparseVsDense:
    def test_sparse_never_exceeds_dense(self):
        for seq in (16, 64, 177, 821):
            assert sparse_model_flops(BERT_BASE, seq, 30) <= model_flops(BERT_BASE, seq)

    def test_sparse_equals_dense_when_k_covers_sequence(self):
        seq = 24
        assert sparse_model_flops(BERT_BASE, seq, seq) == model_flops(BERT_BASE, seq)

    def test_attention_core_scales_quadratically_dense(self):
        ratio = attention_core_flops(BERT_BASE, 256) / attention_core_flops(BERT_BASE, 128)
        assert ratio == pytest.approx(4.0, rel=0.05)

    def test_sparse_attention_core_scales_linearly(self):
        ratio = sparse_attention_core_flops(BERT_BASE, 512, 30) / sparse_attention_core_flops(
            BERT_BASE, 256, 30
        )
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_top30_attention_core_reduction_over_80_percent_at_squad_length(self):
        dense = attention_core_flops(BERT_BASE, 177)
        sparse = sparse_attention_core_flops(BERT_BASE, 177, 30)
        assert 1 - sparse / dense > 0.8

    def test_attention_core_is_subset_of_attention_total(self):
        assert attention_core_flops(BERT_BASE, 128) < attention_only_flops(BERT_BASE, 128)


class TestComplexityProperties:
    @given(st.integers(8, 1024), st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_sparse_monotone_in_k(self, seq, k):
        """More candidates never means less work."""
        assert sparse_model_flops(BERT_BASE, seq, k) <= sparse_model_flops(BERT_BASE, seq, k + 8)

    @given(st.integers(8, 512))
    @settings(max_examples=50, deadline=None)
    def test_dense_monotone_in_sequence_length(self, seq):
        assert model_flops(BERT_BASE, seq) < model_flops(BERT_BASE, seq + 16)

    @given(st.integers(8, 512), st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_all_counts_positive(self, seq, k):
        assert model_flops(BERT_BASE, seq) > 0
        assert sparse_model_flops(BERT_BASE, seq, k) > 0
        assert attention_core_flops(BERT_BASE, seq) > 0
