"""Tests for the fused attention-row kernel (Fig. 4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.loop_fusion import (
    attention_row_reference,
    fused_attention_row,
    fused_loop_cycles,
)


class TestFusedAttentionRow:
    def test_matches_unfused_reference(self, rng):
        q = rng.normal(size=16)
        keys = rng.normal(size=(10, 16))
        values = rng.normal(size=(10, 16))
        fused = fused_attention_row(q, keys, values)
        ref_context, ref_probs = attention_row_reference(q, keys, values)
        assert np.allclose(fused.context, ref_context)
        assert np.allclose(fused.probs, ref_probs)

    def test_probs_sum_to_one(self, rng):
        q = rng.normal(size=8)
        keys = rng.normal(size=(5, 8))
        values = rng.normal(size=(5, 8))
        assert fused_attention_row(q, keys, values).probs.sum() == pytest.approx(1.0)

    def test_masked_candidates_get_zero_probability(self, rng):
        q = rng.normal(size=8)
        keys = rng.normal(size=(6, 8))
        values = rng.normal(size=(6, 8))
        mask = np.array([True, True, False, True, False, True])
        result = fused_attention_row(q, keys, values, mask=mask)
        assert np.all(result.probs[~mask] == 0.0)
        assert result.probs.sum() == pytest.approx(1.0)

    def test_all_masked_returns_zero_context(self, rng):
        q = rng.normal(size=4)
        keys = rng.normal(size=(3, 4))
        values = rng.normal(size=(3, 4))
        result = fused_attention_row(q, keys, values, mask=np.zeros(3, dtype=bool))
        assert np.all(result.context == 0.0)

    def test_scaling_applied_at_final_iteration(self, rng):
        # The fused loop applies 1/sqrt(d) exactly once; the scores it exposes
        # therefore equal the scaled dot products.
        q = rng.normal(size=9)
        keys = rng.normal(size=(4, 9))
        values = rng.normal(size=(4, 9))
        result = fused_attention_row(q, keys, values)
        expected = keys @ q / np.sqrt(9)
        assert np.allclose(result.scores, expected)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            fused_attention_row(rng.normal(size=4), rng.normal(size=(3, 5)), rng.normal(size=(3, 5)))
        with pytest.raises(ValueError):
            fused_attention_row(rng.normal(size=5), rng.normal(size=5), rng.normal(size=5))

    def test_cycle_counts_reported(self, rng):
        q = rng.normal(size=8)
        keys = rng.normal(size=(12, 8))
        values = rng.normal(size=(12, 8))
        result = fused_attention_row(q, keys, values, unroll=4)
        assert result.cycles_stage22 == fused_loop_cycles(12, 8, 4)
        assert result.cycles_stage23 > 0


class TestFusedLoopCycles:
    def test_ii_one_loop_nest(self):
        # head_dim iterations of the reduction, candidates/unroll inner trips.
        assert fused_loop_cycles(num_candidates=30, head_dim=64, unroll=1) == 64 * 30

    def test_unrolling_divides_inner_trip_count(self):
        assert fused_loop_cycles(30, 64, unroll=2) == 64 * 15
        assert fused_loop_cycles(30, 64, unroll=8) == 64 * 4  # ceil(30/8) = 4

    def test_zero_candidates_cost_nothing(self):
        assert fused_loop_cycles(0, 64) == 0

    def test_unroll_speedup_is_monotone(self):
        cycles = [fused_loop_cycles(100, 64, unroll=u) for u in (1, 2, 4, 8, 16)]
        assert cycles == sorted(cycles, reverse=True)


class TestFusedKernelProperties:
    @given(
        st.integers(2, 12),   # candidates
        st.integers(2, 16),   # head_dim
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_fused_equals_reference_for_random_inputs(self, candidates, head_dim, seed):
        """Loop fusion is a pure re-ordering: results match the naive kernel."""
        rng = np.random.default_rng(seed)
        q = rng.normal(size=head_dim)
        keys = rng.normal(size=(candidates, head_dim))
        values = rng.normal(size=(candidates, head_dim))
        fused = fused_attention_row(q, keys, values)
        ref_context, ref_probs = attention_row_reference(q, keys, values)
        assert np.allclose(fused.context, ref_context, atol=1e-10)
        assert np.allclose(fused.probs, ref_probs, atol=1e-10)
