"""Recreation of the paper's Fig. 3 worked example.

Fig. 3 walks one query row and four key vectors through the full sparse
attention flow: exact scores and softmax (baseline), 4-bit quantization,
approximate scores, Top-2 selection, exact sparse scores and sparse softmax.
These tests pin the reproduction to the numbers printed in the figure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quantization import quantize
from repro.core.topk import topk_indices
from repro.transformer.functional import softmax

#: One query row and the four key rows of Fig. 3 (already scaled by 1/sqrt(d);
#: the figure lists the resulting dot products directly).
FIG3_EXACT_SCORES = np.array([1.17, 0.30, 1.05, -0.83])

#: The 4-bit quantized approximate scores printed in step 3 of the figure.
FIG3_APPROX_SCORES = np.array([48.0, 10.0, 41.0, -29.0])


class TestFig3Baseline:
    def test_step1_softmax_of_exact_scores(self):
        # Step 1 of the figure: softmax(1.17, 0.30, 1.05, -0.83) = (0.41, 0.17, 0.37, 0.05)
        probs = softmax(FIG3_EXACT_SCORES)
        assert probs == pytest.approx([0.41, 0.17, 0.37, 0.05], abs=0.01)


class TestFig3QuantizedSelection:
    def test_step3_quantized_ranking_matches_exact_ranking(self):
        # The quantized scores preserve the ordering of the exact scores.
        assert list(np.argsort(FIG3_APPROX_SCORES)) == list(np.argsort(FIG3_EXACT_SCORES))

    def test_step4_top2_selects_k1_and_k3(self):
        selected = set(topk_indices(FIG3_APPROX_SCORES, 2).indices)
        assert selected == {0, 2}

    def test_step6_sparse_softmax(self):
        # Step 6: softmax over the selected exact scores (1.17, 1.05) gives
        # (0.53, 0.47); unselected candidates get probability 0.
        selected_scores = FIG3_EXACT_SCORES[[0, 2]]
        probs = softmax(selected_scores)
        assert probs == pytest.approx([0.53, 0.47], abs=0.01)

    def test_sparse_result_approximates_dense_result(self):
        # The figure's point: (0.53, 0, 0.47, 0) approximates (0.41, 0.17, 0.37, 0.05).
        dense = softmax(FIG3_EXACT_SCORES)
        sparse = np.zeros(4)
        sparse[[0, 2]] = softmax(FIG3_EXACT_SCORES[[0, 2]])
        assert np.abs(dense - sparse).max() < 0.2
        assert np.argmax(dense) == np.argmax(sparse)


class TestFig3QuantizerBehaviour:
    def test_four_bit_quantization_of_the_figure_matrix(self):
        # Quantizing the figure's K matrix with the paper's formula keeps the
        # element with the largest magnitude at level +/-7.
        k_matrix = np.array(
            [
                [0.41, 1.09, 0.11],
                [0.66, 1.88, 0.11],
                [-1.95, 1.13, 1.41],
                [1.48, 1.33, 0.41],
            ]
        )
        q = quantize(k_matrix, 4)
        assert np.abs(q.values).max() == 7
        # Ordering of each column is preserved under quantization.
        for col in range(3):
            assert list(np.argsort(q.values[:, col], kind="stable")) == list(
                np.argsort(k_matrix[:, col], kind="stable")
            )
