"""Decode engine properties: encoder reduction, KV admission, gang baseline."""

from __future__ import annotations

import pytest

from repro.decode import (
    DecodeRequest,
    GeometricOutputLength,
    simulate_decode_online,
)
from repro.devices import Device, build_device
from repro.serving.arrivals import PoissonArrivals
from repro.serving.engine import simulate_online
from repro.serving.slo import SLOSpec
from repro.transformer.configs import MRPC, SQUAD_V11 as SQUAD, get_model_config

BERT = get_model_config("bert-base")


def _decode_device(kv_mb: float | None = None, **knobs) -> Device:
    if kv_mb is not None:
        knobs["kv_cache_bytes"] = int(kv_mb * 2**20)
    return build_device("sparse-fpga", model=BERT, dataset=SQUAD, **knobs)


class TestEncoderReduction:
    def test_single_token_outputs_reduce_to_simulate_online(self):
        """output_len == 1 must reproduce the encoder engine record-for-record."""
        arrivals = PoissonArrivals(rate_qps=40.0)
        decode = simulate_decode_online(
            _decode_device(),
            SQUAD,
            arrivals,
            num_requests=120,
            output_lengths=1,
            seed=2022,
        )
        encoder = simulate_online(
            _decode_device(), SQUAD, arrivals, num_requests=120, seed=2022
        )
        assert len(decode.records) == len(encoder.records)
        for d, e in zip(decode.records, encoder.records):
            assert d.request.request_id == e.request.request_id
            assert d.request.length == e.request.length
            assert d.dispatch_time == e.dispatch_time
            assert d.start_time == e.start_time
            assert d.completion_time == e.completion_time
            assert d.batch_id == e.batch_id
            assert d.device_index == e.device_index
            assert d.first_token_time == d.completion_time
        assert decode.queue_depth_timeline == encoder.queue_depth_timeline
        assert [b.execution.latency_seconds for b in decode.batches] == [
            b.execution.latency_seconds for b in encoder.batches
        ]
        assert decode.latency_percentile(95) == encoder.latency_percentile(95)

    def test_reduction_holds_under_kv_cap(self):
        """A KV cap that admits every batch leaves the reduction intact."""
        arrivals = PoissonArrivals(rate_qps=30.0)
        decode = simulate_decode_online(
            _decode_device(kv_mb=512.0),
            SQUAD,
            arrivals,
            num_requests=60,
            output_lengths=1,
            seed=7,
        )
        encoder = simulate_online(
            _decode_device(), SQUAD, arrivals, num_requests=60, seed=7
        )
        assert [r.completion_time for r in decode.records] == [
            r.completion_time for r in encoder.records
        ]


class TestKvAdmission:
    def test_kv_peak_never_exceeds_capacity(self):
        device = _decode_device(kv_mb=24.0)
        report = simulate_decode_online(
            device,
            SQUAD,
            PoissonArrivals(rate_qps=40.0),
            num_requests=150,
            output_lengths=GeometricOutputLength(mean_output_len=32.0),
            seed=2022,
        )
        assert report.num_completed == 150
        (summary,) = report.decode_devices
        assert summary["kv_cache_bytes"] == int(24.0 * 2**20)
        assert summary["kv_peak_bytes"] is not None
        assert summary["kv_peak_bytes"] <= summary["kv_cache_bytes"]
        assert report.num_kv_stalls > 0  # the cap actually gated admission

    def test_uncapped_device_reports_no_peak(self):
        report = simulate_decode_online(
            _decode_device(),
            MRPC,
            PoissonArrivals(rate_qps=20.0),
            num_requests=30,
            output_lengths=4,
            seed=0,
        )
        (summary,) = report.decode_devices
        assert summary["kv_cache_bytes"] is None
        assert summary["kv_peak_bytes"] is None
        assert report.num_kv_stalls == 0

    def test_request_larger_than_cache_is_config_error(self):
        tiny = _decode_device(kv_mb=2.0)  # one long SQuAD prompt exceeds 2 MiB
        with pytest.raises(ValueError, match="kv_cache_bytes"):
            simulate_decode_online(
                tiny,
                SQUAD,
                PoissonArrivals(rate_qps=10.0),
                num_requests=40,
                output_lengths=64,
                seed=2022,
            )


class TestIterationVersusGang:
    def test_iteration_level_sustains_higher_token_goodput(self):
        """The vLLM/Orca result: continuous batching wins on decode-heavy streams."""
        dist = GeometricOutputLength(mean_output_len=192.0, max_output_len=512)

        def run(iteration_level: bool):
            device = build_device(
                "sparse-fpga",
                model=BERT,
                dataset=MRPC,
                kv_cache_bytes=int(32.0 * 2**20),
            )
            return simulate_decode_online(
                device,
                MRPC,
                PoissonArrivals(rate_qps=40.0),
                num_requests=80,
                output_lengths=dist,
                iteration_level=iteration_level,
                seed=2022,
            )

        iteration = run(True)
        gang = run(False)
        assert iteration.iteration_level and not gang.iteration_level
        assert (
            iteration.sustained_tokens_per_second
            > gang.sustained_tokens_per_second
        )
        # Refilling mid-decode also tightens the inter-token tail.
        assert iteration.inter_token_percentile(95) <= gang.inter_token_percentile(95)

    def test_modes_generate_identical_token_totals(self):
        dist = GeometricOutputLength(mean_output_len=48.0)
        reports = [
            simulate_decode_online(
                _decode_device(),
                MRPC,
                PoissonArrivals(rate_qps=25.0),
                num_requests=40,
                output_lengths=dist,
                iteration_level=mode,
                seed=3,
            )
            for mode in (True, False)
        ]
        assert reports[0].total_output_tokens == reports[1].total_output_tokens
        assert reports[0].output_lengths == reports[1].output_lengths


class TestEngineValidation:
    def test_device_without_decode_model_refused(self):
        bare = Device()
        with pytest.raises(ValueError, match="decode cost"):
            simulate_decode_online(
                bare, MRPC, PoissonArrivals(rate_qps=5.0), num_requests=4
            )

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            simulate_decode_online(_decode_device(), MRPC, [])

    def test_report_shape(self):
        slo = SLOSpec(base_s=0.5, per_output_token_s=0.005)
        report = simulate_decode_online(
            _decode_device(),
            MRPC,
            PoissonArrivals(rate_qps=20.0),
            num_requests=25,
            output_lengths=GeometricOutputLength(mean_output_len=16.0),
            slo=slo,
            seed=1,
        )
        payload = report.to_dict()
        assert payload["iteration_level"] is True
        assert payload["num_decode_steps"] == report.num_decode_steps > 0
        assert payload["total_output_tokens"] == report.total_output_tokens
        assert set(payload["ttft_ms"]) == {"p50", "p95"}
        assert set(payload["inter_token_ms"]) == {"p50", "p95"}
        assert payload["sustained_tokens_per_second"] > 0
        for record in report.records:
            assert record.first_token_time <= record.completion_time
            assert record.ttft >= 0.0
            if record.num_output_tokens == 1:
                assert record.inter_token_latency is None
            else:
                assert record.inter_token_latency > 0.0

    def test_explicit_request_list_keeps_output_lens(self):
        requests = [
            DecodeRequest(request_id=i, length=32, arrival_time=0.05 * i, output_len=3)
            for i in range(8)
        ]
        report = simulate_decode_online(_decode_device(), MRPC, requests)
        assert report.total_output_tokens == 24
        assert report.output_lengths == "explicit"
