"""Output-length distributions: semantics, determinism, registry plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.decode import (
    DecodeRequest,
    FixedOutputLength,
    GeometricOutputLength,
    UniformOutputLength,
    as_decode_requests,
    generate_decode_requests,
    get_output_lengths,
)
from repro.registry import REGISTRY
from repro.serving.arrivals import PoissonArrivals
from repro.serving.request import Request
from repro.transformer.configs import MRPC


class TestDistributions:
    def test_fixed_is_constant(self):
        lengths = FixedOutputLength(output_len=7).sample(50, seed=1)
        assert np.all(lengths == 7)

    def test_uniform_within_bounds(self):
        dist = UniformOutputLength(min_output_len=3, max_output_len=9)
        lengths = dist.sample(500, seed=4)
        assert lengths.min() >= 3 and lengths.max() <= 9

    def test_geometric_capped_and_positive(self):
        dist = GeometricOutputLength(mean_output_len=32.0, max_output_len=64)
        lengths = dist.sample(2000, seed=4)
        assert lengths.min() >= 1 and lengths.max() <= 64

    def test_sampling_is_deterministic_per_seed(self):
        dist = GeometricOutputLength(mean_output_len=16.0)
        assert np.array_equal(dist.sample(100, seed=5), dist.sample(100, seed=5))
        assert not np.array_equal(dist.sample(100, seed=5), dist.sample(100, seed=6))

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            FixedOutputLength(output_len=0)
        with pytest.raises(ValueError):
            UniformOutputLength(min_output_len=5, max_output_len=4)
        with pytest.raises(ValueError):
            GeometricOutputLength(mean_output_len=0.5)


class TestResolution:
    def test_registered_names(self):
        names = REGISTRY.available("output-length")
        assert {"fixed", "uniform", "geometric"} <= set(names)

    def test_resolve_by_name_and_alias(self):
        assert isinstance(get_output_lengths("geometric"), GeometricOutputLength)
        assert isinstance(get_output_lengths("geo"), GeometricOutputLength)
        dist = get_output_lengths("fixed", output_len=3)
        assert dist.output_len == 3

    def test_int_shorthand_is_fixed(self):
        dist = get_output_lengths(12)
        assert isinstance(dist, FixedOutputLength) and dist.output_len == 12

    def test_instance_passthrough_rejects_knobs(self):
        dist = FixedOutputLength(output_len=2)
        assert get_output_lengths(dist) is dist
        with pytest.raises(TypeError):
            get_output_lengths(dist, output_len=3)
        with pytest.raises(TypeError):
            get_output_lengths(4, output_len=3)


class TestRequestGeneration:
    def test_prompts_and_timing_independent_of_output_lengths(self):
        arrivals = PoissonArrivals(rate_qps=20.0)
        fixed = generate_decode_requests(
            MRPC, arrivals, 64, FixedOutputLength(output_len=4), seed=9
        )
        geo = generate_decode_requests(
            MRPC, arrivals, 64, GeometricOutputLength(mean_output_len=64.0), seed=9
        )
        assert [r.length for r in fixed] == [r.length for r in geo]
        assert [r.arrival_time for r in fixed] == [r.arrival_time for r in geo]
        assert [r.output_len for r in fixed] != [r.output_len for r in geo]

    def test_as_decode_requests_coerces_plain_requests(self):
        plain = Request(request_id=3, length=17, arrival_time=1.5)
        coerced = as_decode_requests([plain])[0]
        assert isinstance(coerced, DecodeRequest)
        assert coerced.output_len == 1
        assert coerced.length == 17 and coerced.arrival_time == 1.5

    def test_decode_request_invariants(self):
        request = DecodeRequest(request_id=0, length=10, arrival_time=0.0, output_len=5)
        assert request.total_tokens == 15
        with pytest.raises(ValueError):
            DecodeRequest(request_id=0, length=10, arrival_time=0.0, output_len=0)
