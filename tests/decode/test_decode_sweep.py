"""Decode sweep: config validation, top-k concurrency search, end-to-end run."""

from __future__ import annotations

import dataclasses

import pytest

from repro.decode.sweep import (
    DecodeSweepConfig,
    _topk_accuracy_drops,
    decode_concurrency_limit,
    run_decode_sweep,
)
from repro.devices import build_device
from repro.transformer.configs import get_model_config

ITL_BUDGET_S = 4e-3
CONTEXT_TOKENS = 245


def _sweep_device(top_k: int | None = None):
    knobs = {
        "model": get_model_config("bert-base"),
        "dataset": "mrpc",
        "kv_cache_bytes": int(32.0 * 2**20),
    }
    if top_k is not None:
        knobs["top_k"] = top_k
    return build_device("sparse-fpga", **knobs)


class TestConfigValidation:
    def test_defaults_validate(self):
        DecodeSweepConfig().validate()

    @pytest.mark.parametrize(
        ("knobs", "match"),
        [
            ({"load_fractions": ()}, "load_fractions"),
            ({"load_fractions": (0.5, -1.0)}, "load_fractions"),
            ({"modes": ()}, "modes"),
            ({"modes": ("iteration", "bogus")}, "unknown modes"),
            ({"modes": ("iteration", "iteration")}, "repeat"),
            ({"requests": 0}, "requests"),
            ({"kv_cache_mb": 0.0}, "kv_cache_mb"),
            ({"slo_per_output_token_ms": 1.0}, "slo_ms"),
            ({"topk": (5, 0)}, "topk"),
            ({"itl_budget_ms": 0.0}, "itl_budget_ms"),
            ({"accuracy_examples": -1}, "accuracy_examples"),
            ({"warmup_fraction": 1.0}, "warmup_fraction"),
            ({"device": "no-such-device"}, "no-such-device"),
            ({"output_lengths": "no-such-dist"}, "no-such-dist"),
            ({"arrival": "closed-loop"}, "rate-driven"),
        ],
    )
    def test_invalid_configs_rejected(self, knobs, match):
        with pytest.raises(ValueError, match=match):
            # Frozen configs validate on construction; replace() re-runs it.
            dataclasses.replace(DecodeSweepConfig(), **knobs).validate()


class TestConcurrencyLimit:
    def test_topk_raises_concurrency_over_dense(self):
        """Capping KV reads per step buys strictly more concurrent decodes
        inside the same inter-token budget on the same device."""
        device = _sweep_device(top_k=5)
        dense, dense_step = decode_concurrency_limit(
            device, CONTEXT_TOKENS, ITL_BUDGET_S, top_k=None
        )
        sparse, sparse_step = decode_concurrency_limit(
            device, CONTEXT_TOKENS, ITL_BUDGET_S, top_k=5
        )
        assert dense >= 1
        assert sparse > dense
        assert dense_step <= ITL_BUDGET_S
        assert sparse_step <= ITL_BUDGET_S

    def test_concurrency_monotone_in_k(self):
        device = _sweep_device()
        limits = [
            decode_concurrency_limit(device, CONTEXT_TOKENS, ITL_BUDGET_S, top_k=k)[0]
            for k in (5, 30, None)
        ]
        assert limits == sorted(limits, reverse=True)

    def test_budget_smaller_than_one_step_reports_zero(self):
        device = _sweep_device()
        limit, step = decode_concurrency_limit(device, CONTEXT_TOKENS, 1e-9, top_k=None)
        assert limit == 0
        assert step > 1e-9  # the latency of the unschedulable single step

    def test_device_without_decode_model_refused(self):
        from repro.devices import Device

        with pytest.raises(ValueError, match="decode cost model"):
            decode_concurrency_limit(Device(), CONTEXT_TOKENS, ITL_BUDGET_S, top_k=None)


class TestTopKAccuracyTrade:
    def test_aggressive_k_trades_accuracy_for_concurrency(self):
        """The paper's operating point: small k costs accuracy, buys KV-bound
        concurrency; the default k is accuracy-neutral."""
        drops = _topk_accuracy_drops(DecodeSweepConfig())
        assert drops[5] > 0.0
        assert drops[30] == pytest.approx(0.0)

    def test_skipped_when_no_examples(self):
        config = dataclasses.replace(DecodeSweepConfig(), accuracy_examples=0)
        assert _topk_accuracy_drops(config) == {}


class TestRunDecodeSweep:
    @pytest.fixture(scope="class")
    def result(self):
        config = dataclasses.replace(
            DecodeSweepConfig(),
            requests=60,
            load_fractions=(1.1,),
            accuracy_examples=0,
        )
        return run_decode_sweep(config)

    def test_iteration_beats_request_at_saturation(self, result):
        assert result.saturation_gain() > 1.0

    def test_points_cover_mode_grid(self, result):
        assert {(p.mode, p.load_fraction) for p in result.points} == {
            ("iteration", 1.1),
            ("request", 1.1),
        }
        for point in result.points:
            assert point.offered_qps == pytest.approx(1.1 * result.capacity_qps)
            assert point.report.num_completed == 60

    def test_topk_points_expose_concurrency_trade(self, result):
        ks = [p.top_k for p in result.topk_points]
        assert ks == sorted(DecodeSweepConfig().topk)
        aggressive = result.topk_points[0]
        assert aggressive.concurrency > aggressive.dense_concurrency
        assert aggressive.accuracy_drop is None  # probe disabled in fixture

    def test_to_dict_round_trips_summary(self, result):
        payload = result.to_dict()
        assert payload["dataset"] == "MRPC"
        assert payload["kv_cache_bytes"] == int(32.0 * 2**20)
        assert payload["saturation_gain"] == pytest.approx(result.saturation_gain())
        assert len(payload["points"]) == 2
        assert {row["top_k"] for row in payload["topk_points"]} == set(
            DecodeSweepConfig().topk
        )
