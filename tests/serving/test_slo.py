"""Tests for SLO-aware serving: deadlines, EDF batching, cost routing, limits."""

from __future__ import annotations

import pytest

from repro.devices import AnalyticalDevice, build_fleet
from repro.hardware.accelerator import build_sparse_accelerator
from repro.platforms.devices import RTX_6000
from repro.serving import (
    ClosedLoopArrivals,
    CostModelRouter,
    DeadlineBatcher,
    FixedSizeBatcher,
    LeastLoadedRouter,
    PoissonArrivals,
    Request,
    SLOSpec,
    TimeoutBatcher,
    assign_deadlines,
    simulate_online,
)
from repro.transformer.configs import MRPC, ModelConfig

_SMALL_MODEL = ModelConfig(name="slo-2L", num_layers=2, hidden_dim=768, num_heads=12)


def _build(dataset=MRPC):
    return build_sparse_accelerator(
        _SMALL_MODEL, top_k=30, avg_seq=dataset.avg_length, max_seq=dataset.max_length
    )


@pytest.fixture(scope="module")
def capacity_qps():
    return simulate_online(
        _build(),
        MRPC,
        ClosedLoopArrivals(sort_by_length=True),
        num_requests=64,
        batch_policy=FixedSizeBatcher(batch_size=16),
    ).sustained_qps


class TestRequestDeadlines:
    def test_deadline_validates_against_arrival(self):
        Request(request_id=0, length=10, arrival_time=1.0, deadline=1.0)  # zero slack ok
        with pytest.raises(ValueError):
            Request(request_id=0, length=10, arrival_time=1.0, deadline=0.5)

    def test_slo_seconds(self):
        request = Request(request_id=0, length=10, arrival_time=1.0, deadline=1.25)
        assert request.slo_seconds == pytest.approx(0.25)
        assert Request(request_id=1, length=10, arrival_time=0.0).slo_seconds is None

    def test_spec_assigns_base_plus_per_token(self):
        spec = SLOSpec(base_s=0.1, per_token_s=0.001)
        stamped = assign_deadlines(
            [Request(request_id=0, length=50, arrival_time=2.0)], spec
        )
        assert stamped[0].deadline == pytest.approx(2.0 + 0.1 + 0.05)

    def test_existing_deadlines_are_preserved(self):
        explicit = Request(request_id=0, length=50, arrival_time=2.0, deadline=2.01)
        assert assign_deadlines([explicit], SLOSpec(base_s=9.9))[0].deadline == 2.01

    def test_spec_rejects_negative_budgets(self):
        with pytest.raises(ValueError):
            SLOSpec(base_s=-0.1)
        with pytest.raises(ValueError):
            SLOSpec(per_token_s=-1e-6)


class TestAttainmentAccounting:
    def test_no_slo_reports_none(self):
        report = simulate_online(
            _build(), MRPC, PoissonArrivals(rate_qps=200), num_requests=32
        )
        assert report.attainment_rate is None
        assert report.goodput_qps is None
        assert "attainment" not in report.as_row()
        assert report.to_dict()["attainment_rate"] is None

    def test_generous_slo_attains_everything(self, capacity_qps):
        report = simulate_online(
            _build(),
            MRPC,
            PoissonArrivals(rate_qps=0.3 * capacity_qps),
            num_requests=48,
            batch_policy=TimeoutBatcher(batch_size=16, timeout_s=0.005),
            slo=SLOSpec(base_s=60.0),
        )
        assert report.attainment_rate == 1.0
        assert report.goodput_qps == pytest.approx(report.sustained_qps)
        assert report.num_shed_late == 0
        row = report.as_row()
        assert row["attainment"] == 1.0

    def test_on_time_matches_deadline_comparison(self, capacity_qps):
        report = simulate_online(
            _build(),
            MRPC,
            PoissonArrivals(rate_qps=0.8 * capacity_qps),
            num_requests=64,
            batch_policy=TimeoutBatcher(batch_size=16, timeout_s=0.02),
            slo=SLOSpec(base_s=0.05),
        )
        served_on_time = sum(
            1 for r in report.records if r.completion_time <= r.deadline + 1e-9
        )
        total = len(report.records) + report.num_shed + report.num_shed_late
        assert report.attainment_rate == pytest.approx(served_on_time / total)

    def test_attainment_under_warmup_separation(self, capacity_qps):
        """Steady-state attainment charges shed requests to the right window."""
        report = simulate_online(
            _build(),
            MRPC,
            PoissonArrivals(rate_qps=1.2 * capacity_qps),
            num_requests=96,
            batch_policy=DeadlineBatcher(batch_size=16, timeout_s=0.02),
            slo=SLOSpec(base_s=0.05),
        )
        assert report.num_shed_late > 0
        warmup = 0.25
        cutoff = warmup * report.arrival_horizon_seconds
        served = [
            r for r in report.steady_records(warmup) if r.deadline is not None
        ]
        shed = [
            r
            for r in report.shed_requests
            if r.deadline is not None and r.arrival_time >= cutoff
        ]
        expected = sum(1 for r in served if r.on_time) / (len(served) + len(shed))
        assert report.steady_attainment_rate(warmup) == pytest.approx(expected)
        # Shed bookkeeping partitions the offered stream.
        assert (
            report.num_completed + report.num_shed + report.num_shed_late
            == report.num_requests
        )


class TestDeadlineBatcher:
    def test_zero_slack_requests_are_all_shed(self):
        """base_s=0, per_token_s=0: nothing can meet its deadline."""
        report = simulate_online(
            _build(),
            MRPC,
            PoissonArrivals(rate_qps=200),
            num_requests=32,
            batch_policy=DeadlineBatcher(batch_size=16),
            slo=SLOSpec(base_s=0.0, per_token_s=0.0),
        )
        assert report.num_shed_late == 32
        assert report.num_completed == 0
        assert report.attainment_rate == 0.0
        assert len(report.batches) == 0

    def test_shedding_can_be_disabled(self):
        report = simulate_online(
            _build(),
            MRPC,
            PoissonArrivals(rate_qps=200),
            num_requests=32,
            batch_policy=DeadlineBatcher(batch_size=16, shed_late=False),
            slo=SLOSpec(base_s=0.0),
        )
        assert report.num_shed_late == 0
        assert report.num_completed == 32
        assert report.attainment_rate == 0.0

    def test_edf_dispatch_order_prefers_tight_deadlines(self):
        """With mixed budgets, the tightest requests ride the first batch."""
        requests = [
            Request(request_id=0, length=40, arrival_time=0.0, deadline=10.0),
            Request(request_id=1, length=40, arrival_time=0.0, deadline=0.05),
            Request(request_id=2, length=40, arrival_time=0.0, deadline=5.0),
            Request(request_id=3, length=40, arrival_time=0.0, deadline=0.06),
        ]
        report = simulate_online(
            _build(),
            MRPC,
            requests,
            batch_policy=DeadlineBatcher(batch_size=2, timeout_s=10.0),
        )
        first = next(b for b in report.batches if b.batch_id == 0)
        assert sorted(first.request_ids) == [1, 3]

    def test_deadline_pressure_beats_fixed_timeout_wait(self, capacity_qps):
        """A 20 ms budget under a 20 ms batching timeout: EDF dispatches early
        instead of letting the oldest request age the full timeout."""
        kwargs = dict(num_requests=64, slo=SLOSpec(base_s=0.02), seed=5)
        arrivals = PoissonArrivals(rate_qps=0.6 * capacity_qps)
        blind = simulate_online(
            _build(), MRPC, arrivals,
            batch_policy=TimeoutBatcher(batch_size=16, timeout_s=0.02), **kwargs
        )
        aware = simulate_online(
            _build(), MRPC, arrivals,
            batch_policy=DeadlineBatcher(batch_size=16, timeout_s=0.02), **kwargs
        )
        assert aware.attainment_rate > blind.attainment_rate

    def test_works_without_deadlines_like_timeout(self, capacity_qps):
        """Deadline-less streams fall back to the timeout escape hatch."""
        report = simulate_online(
            _build(),
            MRPC,
            PoissonArrivals(rate_qps=0.5 * capacity_qps),
            num_requests=48,
            batch_policy=DeadlineBatcher(batch_size=16, timeout_s=0.01),
        )
        assert report.num_completed == 48
        assert report.num_shed_late == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlineBatcher(batch_size=0)
        with pytest.raises(ValueError):
            DeadlineBatcher(timeout_s=-1.0)
        with pytest.raises(ValueError):
            DeadlineBatcher(margin_s=-1e-3)

    def test_estimate_memo_keys_do_not_collide(self):
        """Regression: a batch with sorted lengths (1, 40) must not share a
        memo entry with the single-request estimate (device 1, length 40)."""

        class _Stub:
            def __init__(self, per_token):
                self._per_token = per_token

            def next_start(self, now):
                return now

            def batch_latency_seconds(self, lengths):
                return self._per_token * sum(lengths)

        policy = DeadlineBatcher(batch_size=16)
        policy.bind_fleet([_Stub(per_token=1.0), _Stub(per_token=10.0)])
        batch_estimate = policy._estimate((1, 40))  # fleet min: 41.0
        single_on_slow = policy._single_estimate(1, 40)  # device 1: 400.0
        assert batch_estimate == pytest.approx(41.0)
        assert single_on_slow == pytest.approx(400.0)


class TestCostModelRouter:
    def test_prefers_earliest_predicted_completion(self):
        class _Stub:
            def __init__(self, backlog, per_req):
                self._backlog = backlog
                self._per_req = per_req

            def next_start(self, now):
                return now + self._backlog

            def batch_latency_seconds(self, lengths):
                return self._per_req * len(lengths)

        fast_but_busy = _Stub(backlog=1.0, per_req=0.01)
        slow_but_idle = _Stub(backlog=0.0, per_req=0.05)
        batch = [Request(request_id=i, length=30, arrival_time=0.0) for i in range(4)]
        router = CostModelRouter()
        # 4 requests: 1.0 + 0.04 on device 0 vs 0.0 + 0.2 on device 1.
        assert router.select([fast_but_busy, slow_but_idle], batch, now=0.0) == 1
        # 1 request at a longer backlog gap: still the idle device.
        assert router.select([fast_but_busy, slow_but_idle], batch[:1], now=0.0) == 1
        # Once the busy device drains, its speed wins.
        assert router.select([_Stub(0.0, 0.01), slow_but_idle], batch, now=0.0) == 0

    def test_accounts_for_device_batch_limits(self):
        class _Capped:
            max_batch_size = 1

            def next_start(self, now):
                return now

            def admissible_prefix(self, lengths):
                return 1

            def batch_latency_seconds(self, lengths):
                return 0.03 * len(lengths)

        class _Uncapped:
            def next_start(self, now):
                return now

            def batch_latency_seconds(self, lengths):
                return 0.05  # flat per batch, slower per request

        batch = [Request(request_id=i, length=30, arrival_time=0.0) for i in range(4)]
        # Capped device serializes 4 single-request batches: 0.12 > 0.05.
        assert CostModelRouter().select([_Capped(), _Uncapped()], batch, now=0.0) == 1

    def test_routes_long_sequences_off_padding_bound_device(self):
        """Heterogeneous fleet: the padded analytical device quotes long
        batches at max-length cost, so long traffic shifts to the
        length-aware FPGA."""
        fleet = build_fleet(("sparse-fpga", "gpu-rtx6000"), dataset="squad")
        router = CostModelRouter()
        router.prepare(len(fleet), None)
        long_batch = [
            Request(request_id=i, length=320, arrival_time=0.0) for i in range(8)
        ]
        choice = router.select(fleet, long_batch, now=0.0)
        costs = [
            device.batch_latency_seconds([r.length for r in long_batch])
            for device in fleet
        ]
        assert choice == min(range(len(costs)), key=lambda i: (costs[i], i))

    def test_falls_back_to_backlog_for_float_fleets(self):
        router = CostModelRouter()
        batch = [Request(request_id=0, length=30, arrival_time=0.0)]
        assert router.select([5.0, 1.5, 3.0], batch, now=1.0) == 1


class TestPerDeviceLimits:
    def test_admissible_prefix_respects_both_limits(self):
        device = AnalyticalDevice(
            RTX_6000, model_config=_SMALL_MODEL, max_batch_size=3, max_batch_tokens=100
        )
        assert device.admissible_prefix([10, 10, 10, 10]) == 3  # size-capped
        assert device.admissible_prefix([60, 60, 60]) == 1  # token-capped
        assert device.admissible_prefix([200]) == 1  # oversized single request
        unlimited = AnalyticalDevice(RTX_6000, model_config=_SMALL_MODEL)
        assert unlimited.admissible_prefix([10] * 64) == 64

    def test_limits_appear_in_describe(self):
        fleet = build_fleet(
            ("sparse-fpga", "gpu-rtx6000"),
            dataset="mrpc",
            max_batch_size=4,
            max_batch_tokens=512,
        )
        for device in fleet:
            description = device.describe()
            assert description["max_batch_size"] == 4
            assert description["max_batch_tokens"] == 512

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            AnalyticalDevice(RTX_6000, model_config=_SMALL_MODEL, max_batch_size=0)
        with pytest.raises(ValueError):
            AnalyticalDevice(RTX_6000, model_config=_SMALL_MODEL, max_batch_tokens=0)

    def test_engine_splits_batches_at_device_limit(self):
        fleet = build_fleet(("sparse-fpga",), dataset="mrpc", max_batch_size=4)
        report = simulate_online(
            fleet,
            MRPC,
            PoissonArrivals(rate_qps=300),
            num_requests=48,
            batch_policy=TimeoutBatcher(batch_size=16, timeout_s=0.02),
        )
        assert report.num_limit_splits > 0
        assert report.num_completed == 48
        assert max(len(b.request_ids) for b in report.batches) <= 4
        assert report.to_dict()["num_limit_splits"] == report.num_limit_splits

    def test_limit_enforcement_with_continuous_batching(self):
        """Per-device caps hold while batches stream into the pipeline."""
        fleet = build_fleet(("sparse-fpga",), dataset="mrpc", max_batch_size=4)
        report = simulate_online(
            fleet,
            MRPC,
            PoissonArrivals(rate_qps=300),
            num_requests=48,
            batch_policy=TimeoutBatcher(batch_size=16, timeout_s=0.02),
            continuous_batching=True,
        )
        assert report.num_completed == 48
        assert max(len(b.request_ids) for b in report.batches) <= 4
        # Continuous batching admits while draining: successive batches on
        # the same device may overlap, but each still respects the cap.
        assert report.continuous_batching is True

    def test_token_limit_enforced(self):
        fleet = build_fleet(("sparse-fpga",), dataset="mrpc", max_batch_tokens=200)
        report = simulate_online(
            fleet,
            MRPC,
            PoissonArrivals(rate_qps=300),
            num_requests=32,
            batch_policy=TimeoutBatcher(batch_size=16, timeout_s=0.02),
        )
        assert report.num_completed == 32
        for batch in report.batches:
            if len(batch.request_ids) > 1:
                assert sum(batch.execution.lengths) <= 200


class TestSloSweepAcceptance:
    def test_deadline_plus_cost_model_beats_timeout_plus_least_loaded(self):
        """Acceptance: at equal offered load on the default sweep settings,
        the SLO-aware pair achieves strictly higher deadline attainment."""
        from repro.experiments import run_experiment

        result = run_experiment(
            "serving-sweep",
            {
                "datasets": ("mrpc",),
                "load_fractions": (0.5, 0.9),
                "batch_policies": ("timeout", "deadline"),
                "routers": ("least-loaded", "cost-model"),
                "slo_ms": 50.0,
                "requests": 96,
            },
        )
        blind = dict(result.attainment_curve("MRPC", "timeout"))
        aware = dict(result.attainment_curve("MRPC", "deadline"))
        assert set(blind) == set(aware) == {0.5, 0.9}
        for load in sorted(blind):
            assert aware[load] > blind[load], (
                f"SLO-aware pair not better at load {load}: "
                f"{aware[load]} vs {blind[load]}"
            )
        rows = result.as_rows()
        assert all("attainment" in row and "goodput_qps" in row for row in rows)
        assert result.to_dict()["slo"] == {"base_s": 0.05, "per_token_s": 0.0}

    def test_routers_must_pair_with_policies(self):
        from repro.evaluation.serving_sweep import ServingSweepConfig

        with pytest.raises(ValueError, match="pair elementwise"):
            ServingSweepConfig(batch_policies=("timeout",), routers=("a", "b"))

    def test_curves_filter_by_router_for_same_policy_pairings(self):
        """One policy under two routers: the router filter disambiguates."""
        from repro.experiments import run_experiment

        result = run_experiment(
            "serving-sweep",
            {
                "datasets": ("mrpc",),
                "load_fractions": (0.5,),
                "batch_policies": ("deadline", "deadline"),
                "routers": ("least-loaded", "cost-model"),
                "slo_ms": 50.0,
                "requests": 48,
            },
        )
        merged = result.attainment_curve("MRPC", "deadline")
        assert len(merged) == 2  # ambiguous without the router filter
        for router in ("least-loaded", "cost-model"):
            curve = result.attainment_curve("MRPC", "deadline", router=router)
            assert len(curve) == 1 and curve[0][0] == 0.5
            assert len(result.p99_curve("MRPC", "deadline", router=router)) == 1
