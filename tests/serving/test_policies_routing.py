"""Tests for batch-formation policies and multi-accelerator routing."""

from __future__ import annotations

import pytest

from repro.serving.policies import (
    FixedSizeBatcher,
    LengthBucketedBatcher,
    TimeoutBatcher,
    get_batch_policy,
)
from repro.serving.request import Request
from repro.serving.routing import (
    LeastLoadedRouter,
    LengthShardedRouter,
    RoundRobinRouter,
    get_router,
)
from repro.transformer.configs import MRPC


def _queue(*specs: tuple[int, float]) -> list[Request]:
    return [
        Request(request_id=i, length=length, arrival_time=arrival)
        for i, (length, arrival) in enumerate(specs)
    ]


class TestFixedSizeBatcher:
    def test_waits_for_a_full_batch(self):
        policy = FixedSizeBatcher(batch_size=4)
        queue = _queue((30, 0.0), (40, 0.1), (50, 0.2))
        assert policy.form_batch(queue, now=1.0, draining=False) is None
        assert len(queue) == 3

    def test_dispatches_full_batches_fifo(self):
        policy = FixedSizeBatcher(batch_size=2)
        queue = _queue((30, 0.0), (40, 0.1), (50, 0.2))
        batch = policy.form_batch(queue, now=0.2, draining=False)
        assert [r.request_id for r in batch] == [0, 1]
        assert [r.request_id for r in queue] == [2]

    def test_flushes_partial_batch_when_draining(self):
        policy = FixedSizeBatcher(batch_size=4)
        queue = _queue((30, 0.0),)
        batch = policy.form_batch(queue, now=0.0, draining=True)
        assert [r.request_id for r in batch] == [0]
        assert queue == []

    def test_has_no_timer(self):
        assert FixedSizeBatcher(4).next_action_time(_queue((30, 0.0)), now=0.0) is None


class TestTimeoutBatcher:
    def test_dispatches_on_full_batch_before_timeout(self):
        policy = TimeoutBatcher(batch_size=2, timeout_s=1.0)
        queue = _queue((30, 0.0), (40, 0.0), (50, 0.0))
        batch = policy.form_batch(queue, now=0.0, draining=False)
        assert len(batch) == 2

    def test_partial_batch_released_after_timeout(self):
        policy = TimeoutBatcher(batch_size=16, timeout_s=0.5)
        queue = _queue((30, 0.0),)
        assert policy.form_batch(queue, now=0.1, draining=False) is None
        assert policy.next_action_time(queue, now=0.1) == pytest.approx(0.5)
        batch = policy.form_batch(queue, now=0.5, draining=False)
        assert [r.request_id for r in batch] == [0]

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeoutBatcher(batch_size=0)
        with pytest.raises(ValueError):
            TimeoutBatcher(batch_size=4, timeout_s=-1.0)


class TestLengthBucketedBatcher:
    def test_full_bucket_dispatches_similar_lengths(self):
        policy = LengthBucketedBatcher(batch_size=2, timeout_s=10.0, num_buckets=2)
        policy.prepare(MRPC)  # buckets split at the MRPC length midpoint
        queue = _queue((20, 0.0), (80, 0.0), (22, 0.1), (82, 0.1))
        batch = policy.form_batch(queue, now=0.1, draining=False)
        assert sorted(r.length for r in batch) == [20, 22]
        assert sorted(r.length for r in queue) == [80, 82]

    def test_timeout_releases_oldest_bucket(self):
        policy = LengthBucketedBatcher(batch_size=4, timeout_s=0.2, num_buckets=2)
        policy.prepare(MRPC)
        queue = _queue((20, 0.0), (80, 0.05))
        assert policy.form_batch(queue, now=0.1, draining=False) is None
        batch = policy.form_batch(queue, now=0.25, draining=False)
        assert [r.length for r in batch] == [20]
        assert [r.length for r in queue] == [80]

    def test_draining_flushes_every_bucket(self):
        policy = LengthBucketedBatcher(batch_size=4, timeout_s=10.0, num_buckets=2)
        policy.prepare(MRPC)
        queue = _queue((20, 0.0), (80, 0.0))
        seen = []
        while queue:
            seen.append(policy.form_batch(queue, now=0.0, draining=True))
        assert [len(b) for b in seen] == [1, 1]

    def test_explicit_edges_override_prepare(self):
        policy = LengthBucketedBatcher(batch_size=2, bucket_edges=(50,))
        policy.prepare(MRPC)
        queue = _queue((10, 0.0), (60, 0.0), (12, 0.0))
        batch = policy.form_batch(queue, now=0.0, draining=False)
        assert sorted(r.length for r in batch) == [10, 12]


class TestRouters:
    def test_round_robin_cycles(self):
        router = RoundRobinRouter()
        batch = _queue((30, 0.0))
        picks = [router.select([0.0, 0.0, 0.0], batch, now=0.0) for _ in range(5)]
        assert picks == [0, 1, 2, 0, 1]

    def test_least_loaded_picks_smallest_backlog(self):
        router = LeastLoadedRouter()
        batch = _queue((30, 0.0))
        assert router.select([5.0, 1.5, 3.0], batch, now=1.0) == 1
        # Ties break on index for determinism.
        assert router.select([0.5, 0.5], batch, now=1.0) == 0

    def test_length_sharded_routes_by_band(self):
        router = LengthShardedRouter()
        router.prepare(2, MRPC)  # bands split at the MRPC length midpoint
        short = _queue((MRPC.min_length, 0.0))
        long = _queue((MRPC.max_length, 0.0))
        assert router.select([0.0, 0.0], short, now=0.0) == 0
        assert router.select([0.0, 0.0], long, now=0.0) == 1


class TestRoutersOverDevices:
    """Routers read per-device state through the unified Device protocol."""

    class _StubDevice:
        def __init__(self, free_at: float):
            self._free_at = free_at

        def next_start(self, now: float) -> float:
            return max(now, self._free_at)

    def test_backlog_seconds_handles_devices_and_floats(self):
        from repro.serving.routing import Router

        assert Router.backlog_seconds(5.0, now=1.0) == pytest.approx(4.0)
        assert Router.backlog_seconds(0.5, now=1.0) == 0.0
        device = self._StubDevice(free_at=3.0)
        assert Router.backlog_seconds(device, now=1.0) == pytest.approx(2.0)
        assert Router.backlog_seconds(device, now=4.0) == 0.0

    def test_least_loaded_picks_earliest_admitting_device(self):
        router = LeastLoadedRouter()
        fleet = [self._StubDevice(5.0), self._StubDevice(1.5), self._StubDevice(3.0)]
        assert router.select(fleet, _queue((30, 0.0)), now=1.0) == 1


class TestFactories:
    def test_batch_policy_by_name(self):
        assert isinstance(get_batch_policy("fixed", batch_size=8), FixedSizeBatcher)
        assert isinstance(get_batch_policy("timeout", batch_size=8, timeout_s=0.1), TimeoutBatcher)
        assert isinstance(get_batch_policy("bucketed", batch_size=8), LengthBucketedBatcher)
        with pytest.raises(KeyError):
            get_batch_policy("magic")

    def test_router_by_name(self):
        assert isinstance(get_router("round-robin"), RoundRobinRouter)
        assert isinstance(get_router("least-loaded"), LeastLoadedRouter)
        assert isinstance(get_router("length-sharded"), LengthShardedRouter)
        with pytest.raises(KeyError):
            get_router("random")
