"""Autoscaling policies and the elastic-pool serving engine."""

from __future__ import annotations

import pytest

from repro.devices import build_fleet
from repro.registry import REGISTRY
from repro.serving import (
    PredictedAttainmentAutoscaler,
    QueueDepthAutoscaler,
    ScaleObservation,
    TimeoutBatcher,
    get_autoscaler,
    simulate_online,
)
from repro.serving.arrivals import FlashCrowdArrivals, PoissonArrivals
from repro.serving.slo import SLOSpec


def _observation(**overrides) -> ScaleObservation:
    base = dict(
        now=1.0,
        queue_depth=0,
        active_devices=2,
        provisioned_devices=2,
        min_devices=1,
        max_devices=4,
        recent_attainment=None,
        recent_offered_qps=50.0,
    )
    base.update(overrides)
    return ScaleObservation(**base)


class TestQueueDepthPolicy:
    def test_registered(self):
        assert "queue-depth" in REGISTRY.available("autoscaler")
        assert isinstance(get_autoscaler("queue-depth"), QueueDepthAutoscaler)

    def test_scales_up_above_threshold(self):
        policy = QueueDepthAutoscaler(scale_up_depth=8.0, scale_down_depth=1.0)
        assert policy.decide(_observation(queue_depth=17)) == 3  # 8.5 per device
        assert policy.decide(_observation(queue_depth=16)) == 2  # at threshold

    def test_scales_down_at_low_depth(self):
        policy = QueueDepthAutoscaler(scale_up_depth=8.0, scale_down_depth=1.0)
        assert policy.decide(_observation(queue_depth=2)) == 1  # 1 per device
        assert policy.decide(_observation(queue_depth=3)) == 2  # hysteresis band

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            QueueDepthAutoscaler(scale_up_depth=2.0, scale_down_depth=3.0)


class TestPredictedAttainmentPolicy:
    def test_registered(self):
        assert "predicted-attainment" in REGISTRY.available("autoscaler")
        assert isinstance(
            get_autoscaler("predicted-attainment"), PredictedAttainmentAutoscaler
        )

    def test_scales_up_when_missing_target(self):
        policy = PredictedAttainmentAutoscaler(target=0.95)
        assert policy.decide(_observation(recent_attainment=0.80)) == 3

    def test_scales_down_only_when_healthy_and_idle(self):
        policy = PredictedAttainmentAutoscaler(target=0.95)
        healthy_idle = _observation(recent_attainment=1.0, queue_depth=0)
        assert policy.decide(healthy_idle) == 1
        healthy_busy = _observation(recent_attainment=1.0, queue_depth=5)
        assert policy.decide(healthy_busy) == 2

    def test_no_traffic_counts_as_healthy(self):
        policy = PredictedAttainmentAutoscaler(target=0.95)
        assert policy.decide(_observation(recent_attainment=None, queue_depth=0)) == 1

    def test_high_water_defaults_to_midpoint(self):
        policy = PredictedAttainmentAutoscaler(target=0.9)
        assert policy.high_water == pytest.approx(0.95)


#: The flash-crowd acceptance scenario: 40 qps baseline with a 6x spike at
#: t=2 s for 2 s, long enough past the spike that reactive capacity matters.
_CROWD = FlashCrowdArrivals(
    rate_qps=40.0, spike_ratio=6.0, spike_start_s=2.0, spike_duration_s=2.0
)


@pytest.fixture(scope="module")
def crowd_requests():
    return _CROWD.generate("mrpc", 800, seed=11)


def _run(requests, pool_size, **kwargs):
    fleet = build_fleet(
        ["gpu-rtx6000"] * pool_size, dataset="mrpc", cache_length_bucket=16
    )
    return simulate_online(
        fleet,
        "mrpc",
        requests,
        batch_policy=TimeoutBatcher(batch_size=16, timeout_s=0.02),
        slo=SLOSpec(base_s=0.25),
        **kwargs,
    )


class TestElasticPoolEngine:
    def test_scales_up_through_the_spike_and_back_down(self, crowd_requests):
        report = _run(
            crowd_requests,
            3,
            autoscaler="queue-depth",
            provisioning_lag_s=1.0,
            autoscale_interval_s=0.5,
            min_devices=1,
        )
        sizes = [n for _, n in report.scaling_timeline]
        assert sizes[0] == 1
        assert max(sizes) > 1  # the spike forced scale-ups
        assert sizes[-1] == 1  # and the pool drained back down
        assert report.autoscaler == "queue-depth"
        assert report.provisioning_lag_s == 1.0

    def test_provisioning_lag_delays_activation(self, crowd_requests):
        # Decisions land on the 0.5 s grid; with a 1.0 s lag no activation
        # (a timeline step up) can appear before decision + lag.
        report = _run(
            crowd_requests,
            3,
            autoscaler="queue-depth",
            provisioning_lag_s=1.0,
            autoscale_interval_s=0.5,
            min_devices=1,
        )
        previous = 1
        for when, size in report.scaling_timeline[1:]:
            if size > previous:
                decision = when - 1.0
                assert decision >= 0.5 - 1e-9
                assert decision / 0.5 == pytest.approx(round(decision / 0.5))
            previous = size

    def test_billing_charges_only_online_time(self, crowd_requests):
        auto = _run(
            crowd_requests,
            3,
            autoscaler="queue-depth",
            provisioning_lag_s=1.0,
            autoscale_interval_s=0.5,
            min_devices=1,
        )
        static = _run(crowd_requests, 3)
        online = [d.online_seconds for d in auto.devices]
        assert all(seconds >= 0.0 for seconds in online)
        # Device 0 never deactivates; the rest were online only for slices.
        assert online[0] == pytest.approx(max(online))
        assert sum(online) < 3 * auto.makespan_seconds
        assert auto.cost_usd < static.cost_usd
        # Static fleets bill every device for the whole run instead.
        assert static.average_price_per_hour_usd == pytest.approx(3 * 1.25)

    def test_autoscaler_beats_equal_average_size_static_fleet(self, crowd_requests):
        """The PR's acceptance bar: more attainment per dollar-hour.

        The autoscaled pool averages between one and two devices online; the
        equal-average-size static fleet is therefore a single device.  The
        elastic pool pays for extra capacity only around the spike and
        converts it into strictly more on-time work per dollar-hour.
        """
        auto = _run(
            crowd_requests,
            3,
            autoscaler="queue-depth",
            provisioning_lag_s=1.0,
            autoscale_interval_s=0.5,
            min_devices=1,
        )
        average_online = (
            sum(d.online_seconds for d in auto.devices) / auto.makespan_seconds
        )
        assert 1.0 <= average_online < 1.5
        static = _run(crowd_requests, round(average_online))
        assert auto.attainment_per_dollar_hour > static.attainment_per_dollar_hour
        assert auto.attainment_rate > static.attainment_rate

    def test_min_devices_is_a_floor(self, crowd_requests):
        report = _run(
            crowd_requests,
            3,
            autoscaler="queue-depth",
            provisioning_lag_s=0.5,
            autoscale_interval_s=0.5,
            min_devices=2,
        )
        assert all(size >= 2 for _, size in report.scaling_timeline)

    def test_static_run_reports_no_scaling(self, crowd_requests):
        report = _run(crowd_requests, 2)
        assert report.autoscaler is None
        assert report.scaling_timeline == []
        assert all(d.online_seconds is None for d in report.devices)

    def test_results_survive_json_round_trip(self, crowd_requests):
        import json

        report = _run(
            crowd_requests,
            2,
            autoscaler="predicted-attainment",
            provisioning_lag_s=0.5,
            autoscale_interval_s=0.5,
            min_devices=1,
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["autoscaler"] == "predicted-attainment"
        assert payload["scaling_timeline"][0] == [0.0, 1]
        assert payload["cost_usd"] > 0

    def test_validates_knobs(self):
        fleet = build_fleet(["gpu-rtx6000"], dataset="mrpc")
        requests = PoissonArrivals(rate_qps=10.0).generate("mrpc", 4, seed=0)
        with pytest.raises(ValueError):
            simulate_online(
                fleet, "mrpc", requests, autoscaler="queue-depth", provisioning_lag_s=-1.0
            )
        with pytest.raises(ValueError):
            simulate_online(
                fleet, "mrpc", requests, autoscaler="queue-depth", autoscale_interval_s=0.0
            )
        with pytest.raises(ValueError):
            simulate_online(
                fleet, "mrpc", requests, autoscaler="queue-depth", min_devices=2
            )
        with pytest.raises(KeyError):
            simulate_online(fleet, "mrpc", requests, autoscaler="no-such-policy")
