"""Deadline-aware admission at arrival (``shed_on_predicted_miss``)."""

from __future__ import annotations

import pytest

from repro.decode import simulate_decode_online
from repro.devices import build_fleet
from repro.serving import (
    FixedSizeBatcher,
    PoissonArrivals,
    Request,
    SLOSpec,
    simulate_online,
)

_FLEET = ("gpu-rtx6000",)


def _mixed_stream(n=16, spacing=0.05, tight_every=2):
    """Alternating zero-slack and generously-budgeted explicit requests."""
    requests = []
    for i in range(n):
        arrival = i * spacing
        tight = i % tight_every == 0
        requests.append(
            Request(
                request_id=i,
                length=64,
                arrival_time=arrival,
                deadline=arrival if tight else arrival + 10.0,
            )
        )
    return requests


class TestPredictedMissShedding:
    def test_zero_slack_requests_shed_at_arrival(self):
        report = simulate_online(
            build_fleet(_FLEET, dataset="mrpc"),
            "mrpc",
            arrivals=_mixed_stream(),
            batch_policy=FixedSizeBatcher(batch_size=4),
            shed_on_predicted_miss=True,
        )
        # Every zero-slack request is a provable miss; every 10-second
        # budget is attainable.  The shed stream counts against attainment.
        assert report.num_shed_predicted == 8
        assert report.num_completed == 8
        assert len(report.shed_requests) == 8
        assert report.attainment_rate == pytest.approx(0.5)
        assert report.to_dict()["num_shed_predicted"] == 8

    def test_default_off_serves_everything(self):
        report = simulate_online(
            build_fleet(_FLEET, dataset="mrpc"),
            "mrpc",
            arrivals=_mixed_stream(),
            batch_policy=FixedSizeBatcher(batch_size=4),
        )
        assert report.num_shed_predicted == 0
        assert report.num_completed == 16
        # Deadline-blind serving wastes device time on the zero-slack half.
        assert report.attainment_rate == pytest.approx(0.5)

    def test_generous_deadlines_identical_with_knob_on(self):
        """With no predicted miss the knob must not perturb the simulation."""
        kwargs = dict(
            dataset="mrpc",
            arrivals=PoissonArrivals(rate_qps=200.0),
            num_requests=48,
            batch_policy=FixedSizeBatcher(batch_size=8),
            slo=SLOSpec(base_s=10.0),
            seed=7,
        )
        base = simulate_online(build_fleet(_FLEET, dataset="mrpc"), **kwargs)
        gated = simulate_online(
            build_fleet(_FLEET, dataset="mrpc"),
            shed_on_predicted_miss=True,
            **kwargs,
        )
        assert gated.num_shed_predicted == 0
        assert base.to_dict() == gated.to_dict()

    def test_counter_is_distinct_from_admission_and_late_shedding(self):
        report = simulate_online(
            build_fleet(_FLEET, dataset="mrpc"),
            "mrpc",
            arrivals=_mixed_stream(),
            batch_policy=FixedSizeBatcher(batch_size=4),
            shed_on_predicted_miss=True,
        )
        assert report.num_shed == 0
        assert report.num_shed_late == 0
        assert report.num_shed_predicted == 8

    def test_all_shed_report_renders_without_records(self):
        """An all-shed run (every deadline provably missed) must still report.

        Percentiles over zero served requests render as None instead of
        raising -- the CLI reaches this with tight SLOs + the knob.
        """
        requests = [
            Request(request_id=i, length=64, arrival_time=i * 0.05, deadline=i * 0.05)
            for i in range(8)
        ]
        report = simulate_online(
            build_fleet(_FLEET, dataset="mrpc"),
            "mrpc",
            arrivals=requests,
            batch_policy=FixedSizeBatcher(batch_size=4),
            shed_on_predicted_miss=True,
        )
        assert report.num_completed == 0
        assert report.num_shed_predicted == 8
        payload = report.to_dict()
        assert payload["latency_ms"] == {"p50": None, "p95": None, "p99": None}
        assert payload["queueing_delay_ms"] == {"p50": None, "p99": None}
        row = report.as_row()
        assert row["p99_ms"] is None
        assert report.attainment_rate == 0.0

    def test_decode_engine_supports_the_knob(self):
        report = simulate_decode_online(
            build_fleet(_FLEET, dataset="mrpc"),
            "mrpc",
            arrivals=_mixed_stream(),
            batch_policy=FixedSizeBatcher(batch_size=4),
            shed_on_predicted_miss=True,
        )
        assert report.num_shed_predicted == 8
        assert report.num_completed == 8
