"""Tests for the event-driven online serving engine and the closed-loop shim."""

from __future__ import annotations

import contextlib
import warnings

import pytest


@contextlib.contextmanager
def warnings_none():
    """Assert the block emits no warnings."""
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        yield

from repro.datasets.batching import sorted_batches
from repro.datasets.length_distributions import sample_lengths
from repro.hardware.accelerator import build_sparse_accelerator
from repro.scheduling.length_aware import LengthAwareScheduler
from repro.serving import (
    ClosedLoopArrivals,
    FixedSizeBatcher,
    LeastLoadedRouter,
    LengthBucketedBatcher,
    LengthShardedRouter,
    PoissonArrivals,
    RoundRobinRouter,
    TimeoutBatcher,
    TraceArrivals,
    simulate_online,
    simulate_serving,
)
from repro.transformer.configs import DATASET_ZOO, MRPC, ModelConfig

_SMALL_MODEL = ModelConfig(name="serve-2L", num_layers=2, hidden_dim=768, num_heads=12)


def _build(dataset):
    return build_sparse_accelerator(
        _SMALL_MODEL, top_k=30, avg_seq=dataset.avg_length, max_seq=dataset.max_length
    )


@pytest.fixture(scope="module")
def accelerator():
    return _build(MRPC)


@pytest.fixture(scope="module")
def capacity_qps(accelerator):
    """Closed-loop drain rate of the single-device setup (sequences/second)."""
    return simulate_serving(
        accelerator, MRPC, num_requests=64, batch_size=16
    ).throughput_sequences_per_second


class TestEngineBasics:
    def test_every_request_is_served_exactly_once(self, accelerator):
        report = simulate_online(
            accelerator, MRPC, PoissonArrivals(rate_qps=300), num_requests=48
        )
        assert report.num_requests == 48
        assert sorted(r.request.request_id for r in report.records) == list(range(48))
        assert sum(len(b.request_ids) for b in report.batches) == 48

    def test_timestamps_are_causally_ordered(self, accelerator):
        report = simulate_online(
            accelerator,
            MRPC,
            PoissonArrivals(rate_qps=300),
            num_requests=48,
            batch_policy=TimeoutBatcher(batch_size=16, timeout_s=0.01),
        )
        for record in report.records:
            assert record.request.arrival_time <= record.dispatch_time
            assert record.dispatch_time <= record.start_time
            assert record.start_time < record.completion_time
            assert record.latency > 0

    def test_deterministic_given_seed(self, accelerator):
        kwargs = dict(num_requests=48, batch_policy=TimeoutBatcher(16, timeout_s=0.01))
        a = simulate_online(accelerator, MRPC, PoissonArrivals(400), seed=9, **kwargs)
        b = simulate_online(accelerator, MRPC, PoissonArrivals(400), seed=9, **kwargs)
        assert a.latencies_seconds == b.latencies_seconds
        assert [x.device_index for x in a.records] == [x.device_index for x in b.records]

    def test_seed_changes_the_run(self, accelerator):
        a = simulate_online(accelerator, MRPC, PoissonArrivals(400), num_requests=48, seed=9)
        b = simulate_online(accelerator, MRPC, PoissonArrivals(400), num_requests=48, seed=10)
        assert a.latencies_seconds != b.latencies_seconds

    def test_queue_depth_timeline_and_summaries(self, accelerator):
        report = simulate_online(
            accelerator, MRPC, PoissonArrivals(rate_qps=500), num_requests=48
        )
        times = [t for t, _ in report.queue_depth_timeline]
        assert times == sorted(times)
        assert report.max_queue_depth >= 1
        assert 0.0 < report.average_device_utilization <= 1.0
        assert report.devices[0].num_requests == 48

    def test_rejects_empty_fleet_and_empty_stream(self, accelerator):
        with pytest.raises(ValueError):
            simulate_online([], MRPC, PoissonArrivals(100), num_requests=8)
        with pytest.raises(ValueError):
            simulate_online(accelerator, MRPC, [], num_requests=0)

    def test_generative_process_requires_num_requests(self, accelerator):
        with pytest.raises(ValueError, match="num_requests"):
            simulate_online(accelerator, MRPC, PoissonArrivals(100))

    def test_trace_replays_in_full_by_default(self, accelerator):
        trace = TraceArrivals(trace=tuple(i * 0.01 for i in range(20)))
        report = simulate_online(accelerator, MRPC, trace)
        assert report.num_requests == 20

    def test_reused_round_robin_router_is_deterministic(self):
        fleet = [_build(MRPC), _build(MRPC)]
        router = RoundRobinRouter()
        kwargs = dict(
            num_requests=48,
            batch_policy=TimeoutBatcher(batch_size=16, timeout_s=0.005),
            router=router,
            seed=9,
        )
        a = simulate_online(fleet, MRPC, PoissonArrivals(400), **kwargs)
        b = simulate_online(fleet, MRPC, PoissonArrivals(400), **kwargs)
        assert [r.device_index for r in a.records] == [r.device_index for r in b.records]

    def test_length_sharded_fifo_pairing_warns(self):
        fleet = [_build(MRPC), _build(MRPC)]
        with pytest.warns(UserWarning, match="length-sharded"):
            simulate_online(
                fleet,
                MRPC,
                PoissonArrivals(300),
                num_requests=32,
                batch_policy=TimeoutBatcher(batch_size=16, timeout_s=0.005),
                router=LengthShardedRouter(),
            )
        # The supported pairing is silent and uses more than one shard.
        with warnings_none():
            report = simulate_online(
                fleet,
                MRPC,
                PoissonArrivals(300),
                num_requests=64,
                batch_policy=LengthBucketedBatcher(batch_size=16, timeout_s=0.01, num_buckets=2),
                router=LengthShardedRouter(),
            )
        assert sum(1 for device in report.devices if device.num_batches > 0) == 2


class TestClosedLoopEquivalence:
    @pytest.mark.parametrize("dataset_key", sorted(DATASET_ZOO))
    def test_matches_legacy_batch_drain_on_every_dataset(self, dataset_key):
        """Acceptance: closed-loop throughput within 1% of the legacy formula."""
        dataset = DATASET_ZOO[dataset_key]
        accelerator = _build(dataset)
        # The legacy implementation, restated independently: globally sorted
        # batches drained back to back.
        scheduler = LengthAwareScheduler()
        lengths = [int(x) for x in sample_lengths(dataset, 64, seed=2022)]
        batches = sorted_batches(lengths, batch_size=16)
        legacy_seconds = sum(
            scheduler.schedule(accelerator, batch).makespan_seconds for batch in batches
        )
        legacy_qps = 64 / legacy_seconds

        online = simulate_online(
            accelerator,
            dataset,
            ClosedLoopArrivals(sort_by_length=True),
            num_requests=64,
            batch_policy=FixedSizeBatcher(batch_size=16),
        )
        assert online.sustained_qps == pytest.approx(legacy_qps, rel=0.01)

    def test_shim_delegates_to_the_engine(self, accelerator):
        report = simulate_serving(accelerator, MRPC, num_requests=48, batch_size=16)
        assert report.online_report is not None
        assert report.online_report.batch_policy == "fixed-size"
        assert len(report.batch_results) == len(report.online_report.batches) == 3
        assert len(report.sequence_latencies_seconds) == 48
        assert report.throughput_sequences_per_second == pytest.approx(
            report.online_report.sustained_qps
        )

    def test_legacy_module_still_importable_with_deprecation(self):
        import importlib
        import warnings

        import repro.scheduling.serving as legacy

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.reload(legacy)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        from repro.scheduling import simulate_serving as lazy

        assert lazy is simulate_serving

    def test_lazy_reexport_rejects_unknown_names(self):
        import repro.scheduling

        with pytest.raises(AttributeError):
            repro.scheduling.no_such_symbol


class TestOpenLoopBehaviour:
    def test_p99_latency_rises_with_offered_load(self, accelerator, capacity_qps):
        p99s = []
        for fraction in (0.2, 0.6, 1.5):
            report = simulate_online(
                accelerator,
                MRPC,
                PoissonArrivals(rate_qps=fraction * capacity_qps),
                num_requests=96,
                batch_policy=TimeoutBatcher(batch_size=16, timeout_s=0.005),
            )
            p99s.append(report.latency_percentile(99))
        assert p99s[0] < p99s[1] < p99s[2]

    def test_overload_diverges(self, accelerator, capacity_qps):
        def p99_at(fraction, n):
            return simulate_online(
                accelerator,
                MRPC,
                PoissonArrivals(rate_qps=fraction * capacity_qps),
                num_requests=n,
                batch_policy=TimeoutBatcher(batch_size=16, timeout_s=0.005),
            ).latency_percentile(99)

        # Past saturation the tail keeps growing with the stream length
        # (queues build without bound); below saturation it stays put.
        assert p99_at(2.0, 192) > 1.5 * p99_at(2.0, 48)
        assert p99_at(0.2, 192) < 1.5 * p99_at(0.2, 48)

    def test_second_accelerator_increases_sustained_throughput(self, capacity_qps):
        one = _build(MRPC)
        two = [_build(MRPC), _build(MRPC)]
        load = PoissonArrivals(rate_qps=1.6 * capacity_qps)
        kwargs = dict(
            num_requests=96, batch_policy=TimeoutBatcher(batch_size=16, timeout_s=0.005)
        )
        single = simulate_online(one, MRPC, load, **kwargs)
        fleet = simulate_online(two, MRPC, load, router=LeastLoadedRouter(), **kwargs)
        assert fleet.sustained_qps > single.sustained_qps
        assert fleet.latency_percentile(99) < single.latency_percentile(99)

    def test_round_robin_and_least_loaded_use_all_devices(self, capacity_qps):
        fleet = [_build(MRPC), _build(MRPC)]
        for router in (RoundRobinRouter(), LeastLoadedRouter()):
            report = simulate_online(
                fleet,
                MRPC,
                PoissonArrivals(rate_qps=capacity_qps),
                num_requests=64,
                batch_policy=TimeoutBatcher(batch_size=16, timeout_s=0.005),
                router=router,
            )
            assert all(device.num_batches > 0 for device in report.devices)

    def test_length_bucketed_batches_have_narrow_length_bands(self, accelerator, capacity_qps):
        report = simulate_online(
            accelerator,
            MRPC,
            PoissonArrivals(rate_qps=0.8 * capacity_qps),
            num_requests=96,
            batch_policy=LengthBucketedBatcher(batch_size=16, timeout_s=0.02, num_buckets=3),
        )
        assert report.num_requests == 96
        full_batches = [b for b in report.batches if len(b.request_ids) == 16]
        band = (MRPC.max_length - MRPC.min_length) / 3
        for batch in full_batches:
            lengths = batch.result.lengths
            assert max(lengths) - min(lengths) <= band + 1


class TestFleetNormalization:
    def test_large_fleet_builds_in_linear_time(self):
        """Regression: _as_fleet used an O(n^2) identity scan over the fleet."""
        from repro.devices import CycleAccurateDevice

        accelerator = _build(MRPC)
        scheduler = LengthAwareScheduler()
        fleet = [
            CycleAccurateDevice(accelerator, scheduler=scheduler, name=f"dev-{i}")
            for i in range(512)
        ]
        from repro.serving.engine import _as_fleet

        import time

        start = time.perf_counter()
        normalized = _as_fleet(fleet, None)
        elapsed = time.perf_counter() - start
        assert len(normalized) == 512
        # The old quadratic scan took ~0.5s at this size; the id()-set is
        # effectively instant.  Generous bound to stay CI-safe.
        assert elapsed < 0.25

    def test_duplicate_device_instance_still_rejected(self):
        from repro.devices import CycleAccurateDevice

        device = CycleAccurateDevice(_build(MRPC), scheduler=LengthAwareScheduler())
        with pytest.raises(ValueError, match="appears twice"):
            simulate_online(
                [device, device],
                MRPC,
                ClosedLoopArrivals(),
                num_requests=8,
                batch_policy=FixedSizeBatcher(batch_size=4),
            )


class TestScheduleCacheReporting:
    def test_simulate_online_reports_cache_hit_rate(self, accelerator):
        report = simulate_online(
            accelerator,
            MRPC,
            ClosedLoopArrivals(sort_by_length=True),
            num_requests=64,
            batch_policy=FixedSizeBatcher(batch_size=8),
        )
        cache = report.schedule_cache
        assert cache is not None
        assert cache["hits"] + cache["misses"] > 0
        assert 0.0 <= cache["hit_rate"] <= 1.0
        payload = report.to_dict()
        assert payload["schedule_cache"] == cache
        assert all("schedule_cache" in device for device in payload["devices"])
        assert "cache_hit" in report.as_row()
        probes = report.schedule_cache_probes
        assert probes is not None and probes["total"] == cache["hits"] + cache["misses"]

    def test_cache_disabled_reports_none(self, accelerator, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULE_CACHE", "off")
        report = simulate_online(
            accelerator,
            MRPC,
            ClosedLoopArrivals(),
            num_requests=16,
            batch_policy=FixedSizeBatcher(batch_size=8),
        )
        assert report.schedule_cache is None
        assert report.schedule_cache_probes is None
        assert "cache_hit" not in report.as_row()
