"""Fault injection, chaos remedies, and failure-aware routing (repro.faults).

The anchor tests here are the two the fault subsystem was built around:

* **Zero-fault identity** -- injecting a schedule whose every rate is zero
  must leave the serving report *byte-identical* (JSON compare) to a run
  with no injector at all, proving the fault plumbing costs nothing when
  dormant and never perturbs the deterministic replay contract.
* **Remedies beat no remedies** -- on a seeded crash+straggler schedule at
  equal offered load, the remedied stack (hedging + retry-with-backoff +
  failure-aware cost-model routing) must achieve *strictly higher* deadline
  attainment than the unremedied baseline.
"""

from __future__ import annotations

import json

import pytest

from repro.devices import build_device, build_fleet
from repro.faults import (
    CrashRestartFaults,
    FaultInjector,
    ScriptedFaults,
    StragglerFaults,
    ThermalThrottleFaults,
    get_fault_schedule,
)
from repro.serving import (
    PoissonArrivals,
    SLOSpec,
    TimeoutBatcher,
    get_router,
    simulate_online,
)


def _run(fleet, *, faults=None, router=None, slo_ms=None, qps=120.0, requests=96, **kwargs):
    return simulate_online(
        fleet,
        "mrpc",
        arrivals=PoissonArrivals(rate_qps=qps),
        num_requests=requests,
        batch_policy=TimeoutBatcher(batch_size=8, timeout_s=0.02),
        router=router or get_router("least-loaded"),
        slo=SLOSpec(base_s=slo_ms * 1e-3) if slo_ms is not None else None,
        faults=faults,
        **kwargs,
    )


class TestZeroFaultIdentity:
    def test_all_rates_zero_injection_is_byte_identical(self):
        """An inert injector must not move a single float in the payload."""
        fleet = build_fleet("gpu-rtx6000", replicas=2, dataset="mrpc")
        baseline = _run(fleet, slo_ms=200.0)
        fleet = build_fleet("gpu-rtx6000", replicas=2, dataset="mrpc")
        inert = _run(
            fleet,
            slo_ms=200.0,
            faults=[
                CrashRestartFaults(mtbf_s=0.0),
                StragglerFaults(mtbs_s=0.0),
                ThermalThrottleFaults(peak_multiplier=1.0),
            ],
        )
        base_payload = baseline.to_dict()
        inert_payload = inert.to_dict()
        # The only allowed difference: the injected (inert) schedule list.
        assert base_payload.pop("faults") is None
        assert inert_payload.pop("faults") is not None
        assert json.dumps(base_payload, sort_keys=True) == json.dumps(
            inert_payload, sort_keys=True
        )
        assert inert.num_crashes == 0
        assert inert.num_replayed == 0

    def test_fault_free_replay_unperturbed_by_unrelated_schedule_draws(self):
        """The fault RNG is its own stream: a crashy run on one fleet must
        not change the request stream (arrival times / lengths) it sees."""
        fleet = build_fleet("gpu-rtx6000", replicas=2, dataset="mrpc")
        crashy = _run(fleet, faults=[CrashRestartFaults(mtbf_s=0.3, downtime_s=0.05)])
        fleet = build_fleet("gpu-rtx6000", replicas=2, dataset="mrpc")
        clean = _run(fleet)
        crashy_arrivals = sorted(r.request.arrival_time for r in crashy.records)
        # Completed sets can differ (crashes shed), but every request that
        # completed in both runs arrived at the same instant with the same
        # length -- the fault stream never consumed arrival RNG.
        clean_by_id = {r.request.request_id: r.request for r in clean.records}
        for record in crashy.records:
            twin = clean_by_id.get(record.request.request_id)
            if twin is None:
                continue
            assert record.request.arrival_time == twin.arrival_time
            assert record.request.length == twin.length
        assert crashy_arrivals  # the crashy run did complete work


class TestScheduleDeterminism:
    def test_same_seed_same_timelines(self):
        schedules = (CrashRestartFaults(mtbf_s=1.0, downtime_s=0.2),)
        a = FaultInjector(schedules, num_devices=3, seed=7)
        b = FaultInjector(schedules, num_devices=3, seed=7)
        for device in range(3):
            ta, tb = a.timeline(device), b.timeline(device)
            assert ta.first_crash_in(0.0, 50.0) == tb.first_crash_in(0.0, 50.0)
            assert ta.crashes_before(50.0) == tb.crashes_before(50.0)
            assert ta.downtime_before(50.0) == tb.downtime_before(50.0)

    def test_different_seed_or_device_different_crashes(self):
        schedules = (CrashRestartFaults(mtbf_s=1.0, downtime_s=0.2),)
        a = FaultInjector(schedules, num_devices=2, seed=7)
        b = FaultInjector(schedules, num_devices=2, seed=8)
        assert (
            a.timeline(0).first_crash_in(0.0, 100.0)
            != b.timeline(0).first_crash_in(0.0, 100.0)
        )
        assert (
            a.timeline(0).first_crash_in(0.0, 100.0)
            != a.timeline(1).first_crash_in(0.0, 100.0)
        )

    def test_draw_count_independent_of_query_pattern(self):
        """Probing a timeline densely vs sparsely must not shift its events."""
        schedules = (CrashRestartFaults(mtbf_s=0.5, downtime_s=0.1),)
        dense = FaultInjector(schedules, num_devices=1, seed=3).timeline(0)
        sparse = FaultInjector(schedules, num_devices=1, seed=3).timeline(0)
        t = 0.0
        while t < 10.0:  # dense: every 10 ms
            dense.first_crash_in(t, t + 0.01)
            t += 0.01
        assert dense.first_crash_in(10.0, 20.0) == sparse.first_crash_in(10.0, 20.0)

    def test_registry_resolves_fault_kind(self):
        for name in ("crash-restart", "straggler", "thermal-throttle", "scripted"):
            assert get_fault_schedule(name) is not None

    def test_scripted_schedule_validates_events(self):
        with pytest.raises(ValueError):
            ScriptedFaults(crashes=((0, 1.0, 0.0),))
        with pytest.raises(ValueError):
            ScriptedFaults(slowdowns=((0, 2.0, 1.0, 1.5),))


class TestCrashAccounting:
    def test_crashes_conserve_requests(self):
        """completed + shed (all causes) == offered, even under heavy crashing."""
        fleet = build_fleet("gpu-rtx6000", replicas=2, dataset="mrpc")
        report = _run(
            fleet,
            faults=[CrashRestartFaults(mtbf_s=0.2, downtime_s=0.05)],
            requests=96,
        )
        assert report.num_crashes > 0
        # Shed counters are per-cause and disjoint; shed_requests holds all.
        assert report.num_completed + len(report.shed_requests) == report.num_requests
        assert report.num_shed_crashed > 0
        assert report.num_shed == 0  # no admission control in this run
        per_device = sum(d.num_crashes for d in report.devices)
        assert per_device == report.num_crashes

    def test_requeue_exactly_once_then_shed(self):
        """Replay-once semantics: with max_retries=0, a request whose batch
        crashes twice is shed, not retried forever (mirrors the live
        gateway's requeue-exactly-once)."""
        device = build_device("gpu-rtx6000", dataset="mrpc")
        # One device, crashing so often that replayed batches crash again.
        report = _run(
            [device],
            faults=[CrashRestartFaults(mtbf_s=0.05, downtime_s=0.01)],
            requests=64,
            max_retries=0,
        )
        assert report.num_crashes > 1
        assert report.num_shed_crashed > 0
        assert report.num_retries == 0
        assert report.num_completed + len(report.shed_requests) == report.num_requests

    def test_retry_budget_reduces_crash_shedding(self):
        """Retries with backoff convert crash-sheds into completions."""
        kwargs = dict(
            faults=[CrashRestartFaults(mtbf_s=0.05, downtime_s=0.01)],
            requests=64,
        )
        no_retry = _run([build_device("gpu-rtx6000", dataset="mrpc")], **kwargs)
        retried = _run(
            [build_device("gpu-rtx6000", dataset="mrpc")],
            max_retries=4,
            retry_backoff_s=0.01,
            **kwargs,
        )
        assert retried.num_retries > 0
        assert retried.num_shed_crashed < no_retry.num_shed_crashed

    def test_downtime_and_blacklist_surface_in_payload(self):
        fleet = build_fleet("gpu-rtx6000", replicas=2, dataset="mrpc")
        router = get_router("cost-model", blacklist_s=0.1)
        report = _run(
            fleet,
            faults=[CrashRestartFaults(mtbf_s=0.2, downtime_s=0.05)],
            router=router,
            slo_ms=200.0,
        )
        payload = report.to_dict()
        assert payload["num_crashes"] == report.num_crashes > 0
        devices = payload["devices"]
        assert sum(d["num_crashes"] for d in devices) == report.num_crashes
        assert sum(d["downtime_s"] for d in devices) > 0.0
        assert sum(d["blacklisted_s"] for d in devices) > 0.0


class TestHedging:
    def test_hedging_is_deterministic(self):
        def once():
            fleet = build_fleet("gpu-rtx6000", replicas=2, dataset="mrpc")
            report = _run(
                fleet,
                faults=[
                    CrashRestartFaults(mtbf_s=0.3, downtime_s=0.05),
                    StragglerFaults(mtbs_s=0.3, duration_s=0.1, multiplier=3.0),
                ],
                router=get_router("cost-model", blacklist_s=0.1),
                slo_ms=200.0,
                hedging=True,
            )
            return json.dumps(report.to_dict(), sort_keys=True)

        assert once() == once()

    def test_hedge_wins_counted_and_bounded(self):
        fleet = build_fleet("gpu-rtx6000", replicas=2, dataset="mrpc")
        report = _run(
            fleet,
            faults=[CrashRestartFaults(mtbf_s=0.3, downtime_s=0.05)],
            hedging=True,
        )
        assert report.num_hedged > 0
        assert 0 <= report.num_hedge_wins <= report.num_hedged
        assert sum(d.num_hedged for d in report.devices) == 2 * report.num_hedged


class TestRemediesBeatBaseline:
    def test_remedied_stack_strictly_higher_attainment(self):
        """The acceptance scenario matrix: hedging + backoff retries +
        failure-aware cost-model routing vs. an unremedied baseline, same
        seeded crash+straggler schedule, equal offered load."""
        faults = lambda: [  # noqa: E731 - fresh schedule objects per run
            CrashRestartFaults(mtbf_s=0.25, downtime_s=0.08),
            StragglerFaults(mtbs_s=0.25, duration_s=0.15, multiplier=3.0),
        ]
        common = dict(slo_ms=150.0, qps=80.0, requests=128)
        baseline = _run(
            build_fleet("gpu-rtx6000", replicas=3, dataset="mrpc"),
            faults=faults(),
            router=get_router("cost-model"),
            **common,
        )
        remedied = _run(
            build_fleet("gpu-rtx6000", replicas=3, dataset="mrpc"),
            faults=faults(),
            router=get_router("cost-model", blacklist_s=0.2),
            hedging=True,
            max_retries=2,
            retry_backoff_s=0.01,
            **common,
        )
        assert baseline.num_crashes > 0, "scenario must actually crash"
        assert remedied.attainment_rate > baseline.attainment_rate
        # Remedies also recover work: strictly fewer crash-sheds.
        assert remedied.num_shed_crashed <= baseline.num_shed_crashed
