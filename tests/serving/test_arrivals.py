"""Tests for the arrival processes feeding the online serving engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.length_distributions import sample_lengths
from repro.serving.arrivals import (
    BurstyArrivals,
    ClosedLoopArrivals,
    PoissonArrivals,
    TraceArrivals,
    get_arrival_process,
)
from repro.transformer.configs import MRPC, RTE


class TestPoissonArrivals:
    def test_deterministic_given_seed(self):
        a = PoissonArrivals(rate_qps=100).generate(MRPC, 64, seed=7)
        b = PoissonArrivals(rate_qps=100).generate(MRPC, 64, seed=7)
        assert a == b

    def test_different_seed_changes_stream(self):
        a = PoissonArrivals(rate_qps=100).generate(MRPC, 64, seed=7)
        b = PoissonArrivals(rate_qps=100).generate(MRPC, 64, seed=8)
        assert a != b

    def test_times_sorted_and_rate_roughly_matches(self):
        requests = PoissonArrivals(rate_qps=200).generate(MRPC, 2000, seed=1)
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)
        measured = len(requests) / times[-1]
        assert measured == pytest.approx(200, rel=0.15)

    def test_lengths_follow_dataset_sample(self):
        requests = PoissonArrivals(rate_qps=100).generate(MRPC, 32, seed=3)
        expected = [int(x) for x in sample_lengths(MRPC, 32, seed=3)]
        assert [r.length for r in requests] == expected

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate_qps=0.0)


class TestBurstyArrivals:
    def test_mean_rate_is_preserved(self):
        # Short dwell times so the measurement averages over many quiet/burst
        # cycles (with few cycles the empirical rate has huge variance).
        process = BurstyArrivals(rate_qps=300, burst_ratio=6.0, mean_dwell_s=0.02)
        requests = process.generate(RTE, 3000, seed=5)
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)
        measured = len(requests) / times[-1]
        assert measured == pytest.approx(300, rel=0.2)

    def test_burstier_traffic_has_higher_gap_variance(self):
        poisson = PoissonArrivals(rate_qps=200).generate(RTE, 2000, seed=11)
        bursty = BurstyArrivals(rate_qps=200, burst_ratio=10.0, burst_fraction=0.1).generate(
            RTE, 2000, seed=11
        )
        def cv(ts):
            return float(np.std(np.diff(ts)) / np.mean(np.diff(ts)))

        assert cv([r.arrival_time for r in bursty]) > cv([r.arrival_time for r in poisson])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(rate_qps=100, burst_ratio=0.5)
        with pytest.raises(ValueError):
            BurstyArrivals(rate_qps=100, burst_fraction=1.0)


class TestTraceArrivals:
    def test_replays_time_length_pairs(self):
        trace = ((0.0, 40), (0.5, 80), (0.25, 60))
        requests = TraceArrivals(trace=trace).generate(MRPC)
        assert [r.arrival_time for r in requests] == [0.0, 0.25, 0.5]
        assert [r.length for r in requests] == [40, 60, 80]

    def test_times_only_trace_samples_lengths(self):
        requests = TraceArrivals(trace=(0.0, 0.1, 0.2)).generate(MRPC, seed=3)
        assert [r.arrival_time for r in requests] == [0.0, 0.1, 0.2]
        assert [r.length for r in requests] == [
            int(x) for x in sample_lengths(MRPC, 3, seed=3)
        ]

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceArrivals(trace=())


class TestClosedLoopArrivals:
    def test_everything_arrives_at_time_zero(self):
        requests = ClosedLoopArrivals().generate(MRPC, 32, seed=2)
        assert all(r.arrival_time == 0.0 for r in requests)

    def test_sorted_by_decreasing_length(self):
        lengths = [r.length for r in ClosedLoopArrivals().generate(MRPC, 32, seed=2)]
        assert lengths == sorted(lengths, reverse=True)

    def test_unsorted_keeps_sample_order(self):
        lengths = [
            r.length for r in ClosedLoopArrivals(sort_by_length=False).generate(MRPC, 32, seed=2)
        ]
        assert lengths == [int(x) for x in sample_lengths(MRPC, 32, seed=2)]


class TestFactory:
    def test_builds_by_name(self):
        assert isinstance(get_arrival_process("poisson", rate_qps=10), PoissonArrivals)
        assert isinstance(get_arrival_process("bursty", rate_qps=10), BurstyArrivals)
        assert isinstance(get_arrival_process("closed"), ClosedLoopArrivals)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_arrival_process("fractal", rate_qps=10)

    def test_rate_required_for_open_loop(self):
        with pytest.raises(ValueError):
            get_arrival_process("poisson")
