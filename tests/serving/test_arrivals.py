"""Tests for the arrival processes feeding the online serving engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.length_distributions import sample_lengths
from repro.serving.arrivals import (
    BurstyArrivals,
    ClosedLoopArrivals,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    TraceArrivals,
    get_arrival_process,
)
from repro.transformer.configs import MRPC, RTE


class TestPoissonArrivals:
    def test_deterministic_given_seed(self):
        a = PoissonArrivals(rate_qps=100).generate(MRPC, 64, seed=7)
        b = PoissonArrivals(rate_qps=100).generate(MRPC, 64, seed=7)
        assert a == b

    def test_different_seed_changes_stream(self):
        a = PoissonArrivals(rate_qps=100).generate(MRPC, 64, seed=7)
        b = PoissonArrivals(rate_qps=100).generate(MRPC, 64, seed=8)
        assert a != b

    def test_times_sorted_and_rate_roughly_matches(self):
        requests = PoissonArrivals(rate_qps=200).generate(MRPC, 2000, seed=1)
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)
        measured = len(requests) / times[-1]
        assert measured == pytest.approx(200, rel=0.15)

    def test_lengths_follow_dataset_sample(self):
        requests = PoissonArrivals(rate_qps=100).generate(MRPC, 32, seed=3)
        expected = [int(x) for x in sample_lengths(MRPC, 32, seed=3)]
        assert [r.length for r in requests] == expected

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate_qps=0.0)


class TestBurstyArrivals:
    def test_mean_rate_is_preserved(self):
        # Short dwell times so the measurement averages over many quiet/burst
        # cycles (with few cycles the empirical rate has huge variance).
        process = BurstyArrivals(rate_qps=300, burst_ratio=6.0, mean_dwell_s=0.02)
        requests = process.generate(RTE, 3000, seed=5)
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)
        measured = len(requests) / times[-1]
        assert measured == pytest.approx(300, rel=0.2)

    def test_burstier_traffic_has_higher_gap_variance(self):
        poisson = PoissonArrivals(rate_qps=200).generate(RTE, 2000, seed=11)
        bursty = BurstyArrivals(rate_qps=200, burst_ratio=10.0, burst_fraction=0.1).generate(
            RTE, 2000, seed=11
        )
        def cv(ts):
            return float(np.std(np.diff(ts)) / np.mean(np.diff(ts)))

        assert cv([r.arrival_time for r in bursty]) > cv([r.arrival_time for r in poisson])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(rate_qps=100, burst_ratio=0.5)
        with pytest.raises(ValueError):
            BurstyArrivals(rate_qps=100, burst_fraction=1.0)


class TestTraceArrivals:
    def test_replays_time_length_pairs(self):
        trace = ((0.0, 40), (0.5, 80), (0.25, 60))
        requests = TraceArrivals(trace=trace).generate(MRPC)
        assert [r.arrival_time for r in requests] == [0.0, 0.25, 0.5]
        assert [r.length for r in requests] == [40, 60, 80]

    def test_times_only_trace_samples_lengths(self):
        requests = TraceArrivals(trace=(0.0, 0.1, 0.2)).generate(MRPC, seed=3)
        assert [r.arrival_time for r in requests] == [0.0, 0.1, 0.2]
        assert [r.length for r in requests] == [
            int(x) for x in sample_lengths(MRPC, 3, seed=3)
        ]

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceArrivals(trace=())


class TestDiurnalArrivals:
    def test_deterministic_given_seed(self):
        process = DiurnalArrivals(rate_qps=120, amplitude=0.7, period_s=4.0)
        assert process.generate(MRPC, 128, seed=9) == process.generate(MRPC, 128, seed=9)
        assert process.generate(MRPC, 128, seed=9) != process.generate(MRPC, 128, seed=10)

    def test_times_sorted_and_mean_rate_roughly_matches(self):
        process = DiurnalArrivals(rate_qps=150, amplitude=0.6, period_s=2.0)
        requests = process.generate(MRPC, 3000, seed=2)
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)
        measured = len(requests) / times[-1]
        assert measured == pytest.approx(150, rel=0.2)

    def test_peak_half_cycle_is_denser_than_trough(self):
        # With phase=0 the sinusoid peaks in the first half of each period and
        # troughs in the second, so the first half-cycle must carry more
        # arrivals than the second.
        process = DiurnalArrivals(rate_qps=100, amplitude=0.8, period_s=4.0)
        times = [r.arrival_time for r in process.generate(MRPC, 2000, seed=4)]
        in_window = [t % 4.0 for t in times if t <= 12.0]  # three full cycles
        peak = sum(1 for t in in_window if t < 2.0)
        trough = len(in_window) - peak
        assert peak > 1.5 * trough

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(rate_qps=100, amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(rate_qps=100, period_s=0.0)

    def test_registered(self):
        process = get_arrival_process("diurnal", rate_qps=10)
        assert isinstance(process, DiurnalArrivals)


class TestFlashCrowdArrivals:
    def test_deterministic_given_seed(self):
        process = FlashCrowdArrivals(rate_qps=50, spike_ratio=4.0)
        assert process.generate(MRPC, 256, seed=1) == process.generate(MRPC, 256, seed=1)

    def test_spike_window_is_denser(self):
        process = FlashCrowdArrivals(
            rate_qps=40, spike_ratio=6.0, spike_start_s=2.0, spike_duration_s=2.0
        )
        times = [r.arrival_time for r in process.generate(MRPC, 800, seed=11)]
        assert times == sorted(times)
        spike = sum(1 for t in times if 2.0 <= t < 4.0)
        before = sum(1 for t in times if 0.0 <= t < 2.0)
        # 6x rate over an equal-length window: far denser than the baseline.
        assert spike > 3 * before

    def test_baseline_rate_outside_the_spike(self):
        process = FlashCrowdArrivals(
            rate_qps=80, spike_ratio=10.0, spike_start_s=100.0, spike_duration_s=1.0
        )
        requests = process.generate(MRPC, 1500, seed=3)
        times = [r.arrival_time for r in requests if r.arrival_time < 10.0]
        measured = len(times) / 10.0
        assert measured == pytest.approx(80, rel=0.2)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FlashCrowdArrivals(rate_qps=50, spike_ratio=0.5)
        with pytest.raises(ValueError):
            FlashCrowdArrivals(rate_qps=50, spike_duration_s=-1.0)

    def test_registered_with_alias(self):
        assert isinstance(
            get_arrival_process("flash-crowd", rate_qps=10), FlashCrowdArrivals
        )
        assert isinstance(get_arrival_process("flash", rate_qps=10), FlashCrowdArrivals)


class TestClosedLoopArrivals:
    def test_everything_arrives_at_time_zero(self):
        requests = ClosedLoopArrivals().generate(MRPC, 32, seed=2)
        assert all(r.arrival_time == 0.0 for r in requests)

    def test_sorted_by_decreasing_length(self):
        lengths = [r.length for r in ClosedLoopArrivals().generate(MRPC, 32, seed=2)]
        assert lengths == sorted(lengths, reverse=True)

    def test_unsorted_keeps_sample_order(self):
        lengths = [
            r.length for r in ClosedLoopArrivals(sort_by_length=False).generate(MRPC, 32, seed=2)
        ]
        assert lengths == [int(x) for x in sample_lengths(MRPC, 32, seed=2)]


class TestFactory:
    def test_builds_by_name(self):
        assert isinstance(get_arrival_process("poisson", rate_qps=10), PoissonArrivals)
        assert isinstance(get_arrival_process("bursty", rate_qps=10), BurstyArrivals)
        assert isinstance(get_arrival_process("closed"), ClosedLoopArrivals)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_arrival_process("fractal", rate_qps=10)

    def test_rate_required_for_open_loop(self):
        with pytest.raises(ValueError):
            get_arrival_process("poisson")
