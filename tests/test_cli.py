"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in ("fig1", "table1", "fig5", "fig7a", "fig7b", "table2", "all", "serve"):
            args = parser.parse_args([command])
            assert callable(args.func)

    def test_serve_options(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--dataset", "rte",
                "--qps", "250",
                "--num-accelerators", "3",
                "--batch-policy", "bucketed",
                "--routing", "length-sharded",
                "--arrival", "bursty",
                "--seed", "7",
            ]
        )
        assert args.dataset == "rte"
        assert args.qps == 250.0
        assert args.num_accelerators == 3
        assert args.batch_policy == "bucketed"
        assert args.routing == "length-sharded"
        assert args.arrival == "bursty"
        assert args.seed == 7

    def test_serve_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--dataset", "imagenet"])

    def test_fig1_options(self):
        args = build_parser().parse_args(["fig1", "--sequence-length", "256", "--mode", "flops"])
        assert args.sequence_length == 256
        assert args.mode == "flops"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestCommands:
    def test_fig1_command_prints_breakdown(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1(c)" in out
        assert "self-attention share" in out

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "BERT-large" in out
        assert "SQuAD v1.1" in out

    def test_fig5_command(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "length-aware" in out
        assert "saved vs sequential" in out

    def test_fig7a_command(self, capsys):
        assert main(["fig7a"]) == 0
        out = capsys.readouterr().out
        assert "Geometric means" in out
        assert "rtx6000" in out

    def test_table2_command(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Ours FPGA" in out
        assert "ASIC: SpAtten" in out

    def test_serve_command_fixed_qps(self, capsys):
        assert main(["serve", "--dataset", "mrpc", "--qps", "200", "--requests", "32"]) == 0
        out = capsys.readouterr().out
        assert "Online serving simulation" in out
        assert "Per-device utilization" in out
        assert "queueing delay p99 (ms)" in out

    def test_serve_command_load_sweep(self, capsys):
        assert main(["serve", "--dataset", "mrpc", "--requests", "32"]) == 0
        out = capsys.readouterr().out
        assert "Latency vs offered load" in out
        assert "closed-loop capacity (MRPC)" in out
