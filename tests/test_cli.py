"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in ("fig1", "table1", "fig5", "fig7a", "fig7b", "table2", "all", "serve"):
            args = parser.parse_args([command])
            assert callable(args.func)

    def test_serve_options(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--dataset", "rte",
                "--qps", "250",
                "--num-accelerators", "3",
                "--batch-policy", "bucketed",
                "--routing", "length-sharded",
                "--arrival", "bursty",
                "--seed", "7",
            ]
        )
        assert args.dataset == "rte"
        assert args.qps == 250.0
        assert args.num_accelerators == 3
        assert args.batch_policy == "bucketed"
        assert args.routing == "length-sharded"
        assert args.arrival == "bursty"
        assert args.seed == 7

    def test_serve_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--dataset", "imagenet"])

    def test_fig1_options(self):
        args = build_parser().parse_args(["fig1", "--sequence-length", "256", "--mode", "flops"])
        assert args.sequence_length == 256
        assert args.mode == "flops"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestCommands:
    def test_fig1_command_prints_breakdown(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1(c)" in out
        assert "self-attention share" in out

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "BERT-large" in out
        assert "SQuAD v1.1" in out

    def test_fig5_command(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "length-aware" in out
        assert "saved vs sequential" in out

    def test_fig7a_command(self, capsys):
        assert main(["fig7a"]) == 0
        out = capsys.readouterr().out
        assert "Geometric means" in out
        assert "rtx6000" in out

    def test_table2_command(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Ours FPGA" in out
        assert "ASIC: SpAtten" in out

    def test_serve_command_fixed_qps(self, capsys):
        assert main(["serve", "--dataset", "mrpc", "--qps", "200", "--requests", "32"]) == 0
        out = capsys.readouterr().out
        assert "Online serving simulation" in out
        assert "Per-device utilization" in out
        assert "queueing delay p99 (ms)" in out

    def test_serve_command_load_sweep(self, capsys):
        assert main(["serve", "--dataset", "mrpc", "--requests", "32"]) == 0
        out = capsys.readouterr().out
        assert "Latency vs offered load" in out
        assert "closed-loop capacity (MRPC)" in out

    def test_serve_command_closed_loop_arrival(self, capsys):
        assert main(["serve", "--arrival", "closed-loop", "--requests", "32"]) == 0
        out = capsys.readouterr().out
        assert "Online serving simulation" in out
        assert "closed-loop" in out

    def test_serve_command_trace_arrival(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps([[0.002 * i, 32 + i % 48] for i in range(48)]))
        assert main(
            ["serve", "--arrival", "trace", "--trace-file", str(trace), "--requests", "48"]
        ) == 0
        out = capsys.readouterr().out
        assert "Online serving simulation" in out
        assert "trace" in out

    def test_serve_trace_without_file_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--arrival", "trace"])

    def test_serve_bucket_width_flag(self, capsys):
        assert main(
            [
                "serve",
                "--qps", "200",
                "--requests", "32",
                "--batch-policy", "bucketed",
                "--bucket-width", "24",
            ]
        ) == 0
        assert "length-bucketed" in capsys.readouterr().out

    def test_serve_mixed_fleet_continuous_batching(self, capsys):
        assert main(
            [
                "serve",
                "--devices", "sparse-fpga,gpu-rtx6000",
                "--qps", "600",
                "--requests", "32",
                "--continuous-batching",
                "--max-queue-depth", "64",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "cycle-accurate" in out
        assert "analytical" in out
        assert "continuous batching" in out

    def test_serve_mixed_fleet_json_reports_both_backends(self, capsys):
        assert main(
            [
                "serve",
                "--devices", "sparse-fpga", "gpu-rtx6000",
                "--qps", "600",
                "--requests", "32",
                "--format", "json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        report = payload["result"]["report"]
        backends = {device["backend"] for device in report["devices"]}
        assert backends == {"cycle-accurate", "analytical"}
        assert payload["result"]["devices"] == ["sparse-fpga", "gpu-rtx6000"]

    def test_serve_rejects_unknown_device(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--devices", "tpu-v9", "--qps", "100", "--requests", "8"])
        assert "Unknown device" in capsys.readouterr().err

    def test_list_command_prints_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for expected in ("device", "sparse-fpga", "gpu-rtx6000", "arrival",
                         "batch-policy", "router", "experiment"):
            assert expected in out

    def test_list_command_json_and_kind_filter(self, capsys):
        assert main(["list", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {"arrival", "batch-policy", "device", "experiment", "router"} <= set(payload)
        assert "sparse-fpga" in payload["device"]
        assert main(["list", "--kind", "device", "--format", "json"]) == 0
        only_devices = json.loads(capsys.readouterr().out)
        assert set(only_devices) == {"device"}

    def test_list_command_rejects_unknown_kind(self, capsys):
        with pytest.raises(SystemExit):
            main(["list", "--kind", "flux-capacitor"])
        assert "unknown kind" in capsys.readouterr().err

    def test_serving_sweep_command(self, capsys):
        assert main(
            [
                "serving-sweep",
                "--datasets", "mrpc",
                "--load-fractions", "0.5", "1.1",
                "--requests", "32",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Latency vs offered load" in out

    def test_serving_sweep_warmup_flag(self, capsys):
        argv = [
            "serving-sweep",
            "--datasets", "mrpc",
            "--load-fractions", "0.5",
            "--requests", "48",
            "--format", "json",
        ]
        assert main(argv + ["--warmup-fraction", "0"]) == 0
        raw = json.loads(capsys.readouterr().out)["result"]
        assert main(argv + ["--warmup-fraction", "0.4"]) == 0
        warmed = json.loads(capsys.readouterr().out)["result"]
        assert raw["warmup_fraction"] == 0.0
        assert warmed["warmup_fraction"] == 0.4
        # Same simulation, different statistics window.
        assert raw["capacity_qps"] == warmed["capacity_qps"]
        assert raw["points"] != warmed["points"]

    def test_table2_serving_energy_section(self, capsys):
        assert main(
            [
                "table2",
                "--batch-size", "8",
                "--serving-dataset", "mrpc",
                "--serving-requests", "24",
                "--format", "json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        serving = payload["result"]["serving"]
        assert {row["device"] for row in serving} == {"sparse-fpga", "gpu-rtx6000"}
        assert all(row["mj_per_request"] > 0 for row in serving)
        # The proposed FPGA should be far more energy-efficient per request.
        by_device = {row["device"]: row for row in serving}
        assert by_device["sparse-fpga"]["mj_per_request"] < by_device["gpu-rtx6000"]["mj_per_request"]


#: (argv, ...) per command: the fast configuration of every registered
#: subcommand, used to check the machine-readable output paths.
FAST_COMMANDS = {
    "fig1": ["fig1"],
    "table1": ["table1", "--num-sampled-sequences", "200"],
    "fig5": ["fig5"],
    "fig6": [
        "fig6",
        "--pairs", "distilbert:mrpc",
        "--examples", "1",
        "--max-length", "32",
        "--top-k-values", "30", "10",
    ],
    "fig7a": ["fig7a", "--batch-size", "8"],
    "fig7b": ["fig7b", "--batch-size", "8"],
    "table2": ["table2", "--batch-size", "8"],
    "serve": ["serve", "--qps", "200", "--requests", "24"],
    "serving-sweep": [
        "serving-sweep",
        "--datasets", "mrpc",
        "--load-fractions", "0.5",
        "--requests", "24",
    ],
}


class TestJsonFormat:
    @pytest.mark.parametrize("name", sorted(FAST_COMMANDS), ids=str)
    def test_every_command_emits_parseable_json(self, name, capsys):
        assert main(FAST_COMMANDS[name] + ["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == name
        assert isinstance(payload["config"], dict)
        assert isinstance(payload["result"], dict)

    def test_all_command_emits_parseable_json(self, capsys):
        assert main(["all", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"fig1", "table1", "fig5", "fig7a", "fig7b", "table2"}
        for name, entry in payload.items():
            assert entry["experiment"] == name

    def test_output_dir_writes_json_files(self, capsys, tmp_path):
        assert main(["fig1", "--format", "json", "--output-dir", str(tmp_path)]) == 0
        written = json.loads((tmp_path / "fig1.json").read_text())
        assert written == json.loads(capsys.readouterr().out)

    def test_all_output_dir_writes_per_experiment_files(self, capsys, tmp_path):
        assert main(["all", "--output-dir", str(tmp_path)]) == 0
        names = {path.stem for path in tmp_path.glob("*.txt")}
        assert names == {"fig1", "table1", "fig5", "fig7a", "fig7b", "table2"}


class TestConfigPlumbing:
    def test_set_overrides_flag_defaults(self, capsys):
        assert main(["fig1", "--set", "sequence-length=256", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["sequence_length"] == 256

    def test_explicit_flag_beats_config_file(self, capsys, tmp_path):
        config_file = tmp_path / "fig1.json"
        config_file.write_text(json.dumps({"sequence_length": 64, "mode": "flops"}))
        assert main(
            [
                "fig1",
                "--config", str(config_file),
                "--sequence-length", "512",
                "--format", "json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["sequence_length"] == 512
        assert payload["config"]["mode"] == "flops"

    def test_set_beats_explicit_flag(self, capsys):
        assert main(
            ["fig1", "--sequence-length", "64", "--set", "sequence_length=96",
             "--format", "json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["config"]["sequence_length"] == 96

    def test_bad_set_key_errors(self):
        with pytest.raises(SystemExit):
            main(["fig1", "--set", "sequencelength=256"])

    def test_config_file_with_unknown_key_errors(self, tmp_path):
        config_file = tmp_path / "bad.json"
        config_file.write_text(json.dumps({"nonsense": 1}))
        with pytest.raises(SystemExit):
            main(["fig1", "--config", str(config_file)])

    def test_all_rejects_config_and_set(self):
        # `all` runs registry defaults; silently ignoring --config/--set
        # would misrepresent what ran, so the flags don't exist there.
        with pytest.raises(SystemExit):
            main(["all", "--set", "seed=1"])
        with pytest.raises(SystemExit):
            main(["all", "--config", "whatever.json"])

    def test_unknown_registry_name_via_set_is_a_clean_error(self, capsys):
        # batch_policies has no argparse choices; the registry KeyError must
        # surface as a parser error, not a traceback.
        with pytest.raises(SystemExit):
            main(
                ["serving-sweep", "--datasets", "mrpc", "--load-fractions", "0.5",
                 "--requests", "16", "--set", "batch_policies=bogus"]
            )
        assert "Unknown batch-policy" in capsys.readouterr().err

    def test_sweep_mode_honors_bucket_width(self, capsys):
        argv = [
            "serve", "--batch-policy", "bucketed", "--requests", "48",
            "--dataset", "mrpc", "--format", "json",
        ]
        narrow = main(argv + ["--bucket-width", "8"])
        out_narrow = capsys.readouterr().out
        wide = main(argv + ["--bucket-width", "200"])
        out_wide = capsys.readouterr().out
        assert narrow == wide == 0
        points_narrow = json.loads(out_narrow)["result"]["sweep"]["points"]
        points_wide = json.loads(out_wide)["result"]["sweep"]["points"]
        assert points_narrow != points_wide
