"""Docs stay wired to the code: link check + registry coverage.

Two guarantees, both cheap enough for tier-1:

* every relative markdown link in README.md and docs/*.md resolves to a
  real file (broken cross-references fail the suite, and therefore CI);
* every component name registered in :data:`repro.registry.REGISTRY`
  appears in ``docs/api-reference.md``, so the API reference cannot
  silently fall behind ``python -m repro list``.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

#: Markdown inline links: [text](target).  Images share the syntax.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _markdown_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files += sorted(DOCS_DIR.glob("*.md"))
    return files


def _strip_code_blocks(text: str) -> str:
    """Drop fenced code blocks so shell snippets cannot fake or hide links."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def test_docs_directory_exists_with_required_guides():
    assert (DOCS_DIR / "architecture.md").is_file()
    assert (DOCS_DIR / "serving-tutorial.md").is_file()
    assert (DOCS_DIR / "api-reference.md").is_file()


@pytest.mark.parametrize("path", _markdown_files(), ids=lambda p: p.name)
def test_relative_links_resolve(path: Path):
    text = _strip_code_blocks(path.read_text())
    broken = []
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]  # in-page anchors check the file only
        if not target:
            continue  # pure-anchor link within the same page
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.name} has broken relative links: {broken}"


@pytest.fixture(scope="module")
def registry_listing() -> dict[str, list[str]]:
    """``python -m repro list --format json`` from a fresh interpreter.

    A subprocess (not the in-process REGISTRY) pins the check to the
    *built-in* components: other tests register throwaway plug-ins into the
    process-wide registry, and those must not be demanded of the docs.
    """
    import json
    import subprocess
    import sys

    output = subprocess.run(
        [sys.executable, "-m", "repro", "list", "--format", "json"],
        check=True,
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={**__import__("os").environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    ).stdout
    return json.loads(output)


def test_api_reference_covers_every_registered_component(registry_listing):
    reference = (DOCS_DIR / "api-reference.md").read_text()
    missing = [
        f"{kind}/{name}"
        for kind, names in registry_listing.items()
        for name in names
        if f"`{name}`" not in reference
    ]
    assert not missing, (
        "docs/api-reference.md is missing registered components "
        f"(update the tables): {missing}"
    )


def test_architecture_guide_matches_registry_kinds(registry_listing):
    """The registry table in the architecture guide names every kind."""
    guide = (DOCS_DIR / "architecture.md").read_text()
    for kind in registry_listing:
        assert f"`{kind}`" in guide, f"architecture.md registry table lacks kind {kind}"
