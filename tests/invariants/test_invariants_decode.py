"""Cross-scenario invariants of the two-phase (prefill/decode) engine.

The decode engine shares the dispatch core but runs its own prefill path
and iteration-level admission, so the conservation / immutability / work
invariants are re-asserted here over a subset of the scenario space (fault
injection is a sim/live feature; the decode engine has no injector).
"""

from __future__ import annotations

import pytest

from invariant_harness import (
    Scenario,
    build_scenario_fleet,
    check_all,
    check_zero_class_shape,
    generate_scenarios,
    offered_requests,
    scenario_engine_kwargs,
)
from repro.decode.engine import simulate_decode_online

#: Decode scenarios: an independent seed, faults stripped (unsupported).
SCENARIOS = [
    s for s in generate_scenarios(count=12, seed=0xDEC0) if s.fault is None
]


def _run(scenario: Scenario, iteration_level: bool = True):
    fleet = build_scenario_fleet(scenario)
    kwargs = scenario_engine_kwargs(scenario)
    return simulate_decode_online(
        fleet,
        "mrpc",
        output_lengths="geometric",
        iteration_level=iteration_level,
        **kwargs,
    )


@pytest.mark.parametrize("scenario", SCENARIOS, ids=str)
def test_scenario_invariants(scenario):
    report = _run(scenario)
    offered = offered_requests(scenario)
    check_all(report, offered)
    if scenario.mix is None:
        assert report.class_summaries is None
    else:
        assert report.class_summaries is not None


def test_gang_admission_upholds_invariants_too():
    scenario = next(s for s in SCENARIOS if s.mix is not None)
    report = _run(scenario, iteration_level=False)
    check_all(report, offered_requests(scenario))


def test_zero_class_decode_report_has_no_class_keys():
    scenario = next(
        s for s in SCENARIOS if s.mix is None and s.policy != "priority-deadline"
    )
    check_zero_class_shape(_run(scenario))
