"""Fault x class interaction: crashes respect tiers and per-class accounting.

Two contracts ride on the fault injector once classes exist:

* a crashed *high-priority* batch's free replay re-enters formation ahead
  of queued lower-tier work (the replay is just a re-offer, and the
  priority policy orders tiers on every pump);
* the per-cause shed counters stay disjoint per class -- a request shed for
  a crash is charged to ``shed_crashed`` of its own class, never smeared
  across causes or classes.
"""

from __future__ import annotations

from dataclasses import replace

from invariant_harness import SHED_CAUSES, check_all
from repro.devices import build_fleet
from repro.faults import ScriptedFaults
from repro.serving import (
    PoissonArrivals,
    PriorityDeadlineBatcher,
    Request,
    simulate_online,
)
from repro.serving.classes import get_request_class


def _request(request_id, length, arrival, cls, deadline=None):
    return Request(
        request_id=request_id,
        length=length,
        arrival_time=arrival,
        deadline=deadline,
        request_class=cls,
    )


def test_crashed_high_priority_batch_replays_before_lower_tier():
    """One device, one crash: the interactive replay outruns best-effort."""
    fleet = build_fleet(("gpu-rtx6000",), dataset="mrpc", replicas=1)
    # Full interactive batch at t=0 (dispatches immediately, size-triggered);
    # generous deadlines so nothing sheds as provably late.  A *partial*
    # best-effort batch queues right behind it under a long formation
    # timeout, and a best-effort straggler at t=0.05 keeps the engine out of
    # drain mode (draining flushes partial batches) until well after the
    # crash.  The replay re-enters formation while the best-effort tier is
    # still waiting, so the two meet in the same queue -- where tier order
    # must dispatch the replayed interactive batch first.
    interactive = [
        _request(i, 64, 0.0, "interactive", deadline=5.0) for i in range(8)
    ]
    best_effort = [_request(100 + i, 64, 0.001, "best-effort") for i in range(4)]
    best_effort.append(_request(110, 64, 0.05, "best-effort"))
    report = simulate_online(
        fleet,
        "mrpc",
        arrivals=sorted(interactive + best_effort, key=lambda r: r.request_id),
        batch_policy=PriorityDeadlineBatcher(batch_size=8, timeout_s=0.2),
        faults=ScriptedFaults(crashes=((0, 0.002, 0.01),)),
        seed=3,
    )
    check_all(report, interactive + best_effort)
    assert report.num_crashes == 1
    assert report.num_replayed == 8  # the whole interactive batch, for free
    assert report.num_shed_crashed == 0
    # The replayed interactive batch is dispatched before the queued
    # best-effort work and completes before any of it starts: tier order
    # survives the crash.
    replay_batch = min(
        (b for b in report.batches if all(i < 100 for i in b.request_ids)),
        key=lambda b: b.dispatch_time,
    )
    best_effort_batch = min(
        (b for b in report.batches if all(i >= 100 for i in b.request_ids)),
        key=lambda b: b.dispatch_time,
    )
    assert replay_batch.dispatch_time <= best_effort_batch.dispatch_time
    interactive_end = max(
        r.completion_time
        for r in report.records
        if r.request.request_class == "interactive"
    )
    assert interactive_end <= best_effort_batch.start_time
    # Everyone still completes; the crash cost latency, not work.
    assert report.num_completed == 13


def test_per_cause_shed_counters_stay_disjoint_per_class():
    """Admission, predicted, late, and crash sheds partition per class."""
    fleet = build_fleet(("gpu-rtx6000",), dataset="mrpc", replicas=2)
    interactive_cls = get_request_class("interactive")
    base = PoissonArrivals(rate_qps=600).generate("mrpc", 48, seed=21)
    tagged = []
    for index, request in enumerate(base):
        name = ("interactive", "batch", "best-effort")[index % 3]
        deadline = (
            interactive_cls.slo.deadline_for(request) if name == "interactive" else None
        )
        tagged.append(replace(request, request_class=name, deadline=deadline))
    report = simulate_online(
        fleet,
        "mrpc",
        arrivals=tagged,
        batch_policy=PriorityDeadlineBatcher(batch_size=8, timeout_s=0.005),
        max_queue_depth=10,
        shed_on_predicted_miss=True,
        class_queue_limits={"best-effort": 2},
        faults=ScriptedFaults(crashes=((0, 0.01, 0.05), (1, 0.02, 0.05))),
        seed=3,
    )
    check_all(report, tagged)
    summaries = report.class_summaries
    # Per-class causes partition that class's sheds (check_all asserts the
    # sums); on top, the report-level cause totals equal the class totals.
    assert sum(s.shed_crashed for s in summaries.values()) == report.num_shed_crashed
    assert sum(s.shed_late for s in summaries.values()) == report.num_shed_late
    assert sum(s.shed_predicted for s in summaries.values()) == report.num_shed_predicted
    assert sum(s.shed_admission for s in summaries.values()) == report.num_shed
    # Every shed request has exactly one recorded cause.
    assert set(report.shed_causes) == {r.request_id for r in report.shed_requests}
    # The scenario actually exercised multiple causes (else the partition
    # claim is vacuous).
    exercised = [
        cause
        for cause in SHED_CAUSES
        if any(getattr(s, cause) for s in summaries.values())
    ]
    assert len(exercised) >= 2, exercised
