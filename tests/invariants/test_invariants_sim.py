"""Cross-scenario invariants of the event-driven serving simulator.

Each seeded scenario (arrivals x policies x routers x faults x classes)
runs once through :func:`repro.serving.engine.simulate_online`; the shared
checkers assert conservation, class immutability, work conservation, and
the zero-class report shape on every one.
"""

from __future__ import annotations

import pytest

from invariant_harness import (
    NUM_REQUESTS,
    ZERO_CLASS_REPORT_KEYS,
    Scenario,
    build_scenario_fleet,
    check_all,
    check_zero_class_shape,
    generate_scenarios,
    offered_requests,
    scenario_engine_kwargs,
)
from repro.serving.engine import simulate_online

SCENARIOS = generate_scenarios(count=16)


def _run(scenario: Scenario):
    fleet = build_scenario_fleet(scenario)
    kwargs = scenario_engine_kwargs(scenario)
    if scenario.fault is not None:
        from repro.faults import get_fault_schedule

        kwargs["faults"] = [
            get_fault_schedule(scenario.fault, mtbf_s=0.2, downtime_s=0.05)
        ]
    return simulate_online(fleet, "mrpc", **kwargs)


@pytest.mark.parametrize("scenario", SCENARIOS, ids=str)
def test_scenario_invariants(scenario):
    report = _run(scenario)
    offered = offered_requests(scenario)
    check_all(report, offered)
    if scenario.mix is None:
        assert report.class_summaries is None
        if scenario.policy != "priority-deadline":
            check_zero_class_shape(report)
    else:
        assert report.class_summaries is not None
        # Every class named by the mix with nonzero draws appears.
        seen = {r.request_class for r in offered if r.request_class is not None}
        assert set(report.class_summaries) == seen


def test_zero_class_report_keys_are_pinned():
    """A class-free simulation serializes to the exact historical key list."""
    scenario = next(
        s for s in SCENARIOS if s.mix is None and s.policy != "priority-deadline"
    )
    report = _run(scenario)
    assert list(report.to_dict().keys()) == ZERO_CLASS_REPORT_KEYS


def test_class_mix_wrapper_never_perturbs_base_stream():
    """Tagging rides a dedicated RNG stream: timing/length draws unchanged."""
    tagged_scenario = next(s for s in SCENARIOS if s.mix is not None)
    from invariant_harness import build_arrivals
    import dataclasses

    untagged_scenario = dataclasses.replace(tagged_scenario, mix=None)
    tagged = offered_requests(tagged_scenario)
    plain = build_arrivals(untagged_scenario).generate(
        "mrpc", NUM_REQUESTS, seed=tagged_scenario.seed
    )
    assert len(tagged) == len(plain) == NUM_REQUESTS
    for wrapped, bare in zip(tagged, plain):
        assert wrapped.arrival_time == bare.arrival_time
        assert wrapped.length == bare.length
        assert wrapped.request_id == bare.request_id


def test_preemption_counter_reports_only_on_priority_policy():
    priority = next(s for s in SCENARIOS if s.policy == "priority-deadline")
    other = next(s for s in SCENARIOS if s.policy != "priority-deadline")
    assert _run(priority).num_preemptions is not None
    assert _run(other).num_preemptions is None
