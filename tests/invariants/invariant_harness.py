"""Property-based invariant harness for the serving engines.

Seeded generators enumerate scenarios over the cross product the engines
actually serve -- arrival processes x batch policies x routers x fault
schedules x request-class mixes -- and a shared set of checkers asserts the
invariants every engine must uphold on every scenario:

* **Conservation** -- every offered request is accounted for exactly once:
  ``completed + shed == offered``, in total and per class, and the
  per-cause shed counters partition the shed set.
* **Class immutability** -- no request changes class between admission and
  its completion/shed record.
* **Work conservation** -- no request completes twice and no completed
  request also appears shed (preemption defers batches, it never loses or
  duplicates work).
* **Zero-class shape** -- untagged runs serialize to the exact historical
  key set (no ``classes`` / ``num_preemptions`` keys), so class-free
  configs reproduce pre-class reports byte-identically.

Scenarios are deterministic functions of one seed, so a failure reproduces
from its printed :class:`Scenario` alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices import build_fleet
from repro.serving import get_arrival_process, get_batch_policy, get_router
from repro.serving.classes import ClassMixArrivals

#: The scenario space.  Every entry is a registered name (or None = off).
ARRIVAL_CHOICES = ("poisson", "bursty")
POLICY_CHOICES = ("timeout", "deadline", "priority-deadline", "fixed")
ROUTER_CHOICES = ("round-robin", "least-loaded")
FAULT_CHOICES = (None, "crash-restart")
CLASS_CHOICES = (
    None,
    "interactive:0.5,batch:0.3,best-effort:0.2",
    "interactive,best-effort",
)

#: Small streams keep every scenario in the low tens of milliseconds while
#: still exercising queueing, shedding, and preemption.
NUM_REQUESTS = 32


@dataclass(frozen=True)
class Scenario:
    """One sampled point of the scenario space (self-reproducing)."""

    index: int
    arrival: str
    policy: str
    router: str
    fault: str | None
    mix: str | None
    qps: float
    max_queue_depth: int | None
    shed_on_predicted_miss: bool
    class_queue_limits: dict | None
    slo_ms: float | None
    seed: int

    def __str__(self) -> str:  # pytest id / failure reproduction line
        return (
            f"s{self.index}-{self.arrival}-{self.policy}-{self.router}"
            f"-fault={self.fault or 'none'}-mix={'yes' if self.mix else 'no'}"
        )


def generate_scenarios(count: int = 16, seed: int = 0x1A7) -> list[Scenario]:
    """Sample ``count`` scenarios deterministically from ``seed``."""
    rng = np.random.default_rng(seed)
    scenarios = []
    for index in range(count):
        mix = CLASS_CHOICES[rng.integers(len(CLASS_CHOICES))]
        policy = POLICY_CHOICES[rng.integers(len(POLICY_CHOICES))]
        # Deadline-driven policies need deadlines from somewhere: give the
        # classless scenarios an explicit SLO (classes stamp their own).
        slo_ms = None
        if mix is None and policy in ("deadline", "priority-deadline"):
            slo_ms = float(rng.choice((30.0, 80.0)))
        limits = None
        if mix is not None and rng.random() < 0.5:
            limits = {"best-effort": int(rng.integers(1, 5))}
        scenarios.append(
            Scenario(
                index=index,
                arrival=ARRIVAL_CHOICES[rng.integers(len(ARRIVAL_CHOICES))],
                policy=policy,
                router=ROUTER_CHOICES[rng.integers(len(ROUTER_CHOICES))],
                fault=FAULT_CHOICES[rng.integers(len(FAULT_CHOICES))],
                mix=mix,
                qps=float(rng.choice((150.0, 400.0, 900.0))),
                max_queue_depth=(int(rng.integers(4, 16)) if rng.random() < 0.4 else None),
                shed_on_predicted_miss=bool(rng.random() < 0.3),
                class_queue_limits=limits,
                slo_ms=slo_ms,
                seed=int(rng.integers(1, 10_000)),
            )
        )
    return scenarios


def build_arrivals(scenario: Scenario):
    """The scenario's arrival process (fresh instance, safe to regenerate)."""
    arrivals = get_arrival_process(scenario.arrival, rate_qps=scenario.qps)
    if scenario.mix is not None:
        arrivals = ClassMixArrivals(base=arrivals, mix=scenario.mix)
    return arrivals


def offered_requests(scenario: Scenario, dataset: str = "mrpc"):
    """The exact request stream the engine will see (same seed, same draws)."""
    return build_arrivals(scenario).generate(dataset, NUM_REQUESTS, seed=scenario.seed)


def build_scenario_fleet(scenario: Scenario, dataset: str = "mrpc"):
    return build_fleet(("gpu-rtx6000",), dataset=dataset, replicas=2)


def scenario_engine_kwargs(scenario: Scenario) -> dict:
    """The simulate_online / simulate_decode_online keyword set."""
    from repro.serving.slo import SLOSpec

    return {
        "arrivals": build_arrivals(scenario),
        "num_requests": NUM_REQUESTS,
        "batch_policy": get_batch_policy(
            scenario.policy, batch_size=8, timeout_s=0.01
        ),
        "router": get_router(scenario.router),
        "max_queue_depth": scenario.max_queue_depth,
        "shed_on_predicted_miss": scenario.shed_on_predicted_miss,
        "class_queue_limits": scenario.class_queue_limits,
        "slo": (
            SLOSpec(base_s=scenario.slo_ms * 1e-3) if scenario.slo_ms is not None else None
        ),
        "seed": scenario.seed,
    }


# ----------------------------------------------------------------------
# Checkers (shared by the sim / decode / live invariant tests)
# ----------------------------------------------------------------------

#: Exact key order of a zero-class OnlineServingReport.to_dict() -- the
#: historical report shape class-free runs must keep reproducing.
ZERO_CLASS_REPORT_KEYS = [
    "dataset", "arrival_process", "batch_policy", "router", "scheduler",
    "continuous_batching", "queue_limit", "slo", "offered_qps",
    "num_requests", "num_completed", "num_shed", "num_shed_late",
    "num_shed_predicted", "num_limit_splits", "shed_rate",
    "attainment_rate", "goodput_qps", "num_batches", "sustained_qps",
    "makespan_seconds", "latency_ms", "queueing_delay_ms",
    "max_queue_depth", "mean_queue_depth", "mean_waiting_requests",
    "average_device_utilization", "average_pipeline_utilization",
    "total_energy_joules", "joules_per_million_requests", "cost_usd",
    "average_price_per_hour_usd", "attainment_per_dollar_hour",
    "autoscaler", "provisioning_lag_s", "scaling_timeline",
    "schedule_cache", "faults", "num_crashes", "num_shed_crashed",
    "num_hedged", "num_hedge_wins", "num_retries", "num_replayed",
    "devices",
]

#: The shed-cause vocabulary each request must fall into exactly once.
SHED_CAUSES = ("shed_admission", "shed_predicted", "shed_late", "shed_crashed")


def check_conservation(report, offered) -> None:
    """completed + shed == offered, in total and per class + cause."""
    assert report.num_completed == len(report.records)
    # The report's counters partition the shed set by cause: admission
    # (num_shed), predicted miss, provably late, and crash-exhausted.
    total_shed = (
        report.num_shed
        + report.num_shed_predicted
        + report.num_shed_late
        + report.num_shed_crashed
    )
    assert total_shed == len(report.shed_requests)
    assert report.num_completed + total_shed == len(offered) == report.num_requests
    summaries = report.class_summaries
    if summaries is None:
        return
    assert sum(s.offered for s in summaries.values()) == len(offered)
    assert sum(s.completed for s in summaries.values()) == report.num_completed
    assert sum(s.shed for s in summaries.values()) == total_shed
    for name, summary in summaries.items():
        assert summary.completed + summary.shed == summary.offered, name
        causes = sum(getattr(summary, cause) for cause in SHED_CAUSES)
        assert causes == summary.shed, f"{name}: causes {causes} != shed {summary.shed}"


def check_class_immutability(report, offered) -> None:
    """Every completion / shed carries the class it was offered with."""
    offered_class = {r.request_id: r.request_class for r in offered}
    for record in report.records:
        assert (
            record.request.request_class == offered_class[record.request.request_id]
        ), record.request.request_id
    for request in report.shed_requests:
        assert request.request_class == offered_class[request.request_id], (
            request.request_id
        )


def check_work_conservation(report) -> None:
    """No request completes twice; no completed request is also shed."""
    completed_ids = [r.request.request_id for r in report.records]
    assert len(completed_ids) == len(set(completed_ids))
    shed_ids = [r.request_id for r in report.shed_requests]
    assert len(shed_ids) == len(set(shed_ids))
    assert not set(completed_ids) & set(shed_ids)


def check_zero_class_shape(report) -> None:
    """Untagged runs keep the historical report keys (no class machinery)."""
    assert report.class_summaries is None
    payload = report.to_dict()
    assert "classes" not in payload
    assert "num_preemptions" not in payload


def check_all(report, offered) -> None:
    check_conservation(report, offered)
    check_class_immutability(report, offered)
    check_work_conservation(report)
