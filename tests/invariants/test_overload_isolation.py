"""The multi-tenant acceptance property: isolation under overload.

A shared fleet running the priority-deadline policy must give the
interactive class at least the deadline attainment it would get on its own
*isolated fair-share fleet* (``weight * fleet_size`` devices serving only
interactive traffic), while the best-effort class absorbs the shedding.
This is the economic argument for multi-tenancy: sharing cannot cost the
premium tier anything, and the background tier soaks up overload.

The streams are explicit tagged request lists, so the interactive load is
*identical* in the isolated and shared runs -- the comparison isolates the
policy, not the traffic.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from invariant_harness import check_all
from repro.devices import build_fleet
from repro.serving import (
    DeadlineBatcher,
    PoissonArrivals,
    PriorityDeadlineBatcher,
    simulate_online,
)
from repro.serving.classes import get_request_class

#: Interactive offered at ~its isolated share's saturation point; the
#: best-effort flood at 3x on top pushes the shared fleet well past
#: capacity.  The per-class queue limit keeps the flood from monopolizing
#: the formation queue (it sheds instead -- that's its job).
INTERACTIVE_QPS = 100.0
FLOOD_QPS = 300.0
NUM_EACH = 64
BEST_EFFORT_LIMIT = {"best-effort": 2}


def _streams():
    interactive = get_request_class("interactive")
    base = PoissonArrivals(rate_qps=INTERACTIVE_QPS).generate("mrpc", NUM_EACH, seed=11)
    tagged = [
        replace(r, request_class="interactive", deadline=interactive.slo.deadline_for(r))
        for r in base
    ]
    flood_base = PoissonArrivals(rate_qps=FLOOD_QPS).generate("mrpc", NUM_EACH, seed=12)
    flood = [
        replace(r, request_id=r.request_id + 1000, request_class="best-effort")
        for r in flood_base
    ]
    merged = sorted(tagged + flood, key=lambda r: (r.arrival_time, r.request_id))
    return tagged, merged


def _isolated_attainment(tagged):
    # The interactive fair share: weight 0.5 of the 2-device shared fleet.
    fleet = build_fleet(("gpu-rtx6000",), dataset="mrpc", replicas=1)
    report = simulate_online(
        fleet,
        "mrpc",
        arrivals=tagged,
        batch_policy=DeadlineBatcher(batch_size=8, timeout_s=0.01),
        seed=5,
    )
    return report.attainment_rate, report


def _shared_report(merged, policy):
    fleet = build_fleet(("gpu-rtx6000",), dataset="mrpc", replicas=2)
    return simulate_online(
        fleet,
        "mrpc",
        arrivals=merged,
        batch_policy=policy,
        class_queue_limits=BEST_EFFORT_LIMIT,
        seed=5,
    )


def test_interactive_holds_isolated_attainment_under_overload():
    tagged, merged = _streams()
    isolated_attainment, isolated_report = _isolated_attainment(tagged)
    shared = _shared_report(merged, PriorityDeadlineBatcher(batch_size=8, timeout_s=0.01))
    check_all(shared, merged)
    summaries = shared.class_summaries
    # The premium tier is stressed on its own slice (else the property is
    # vacuous) yet loses nothing by sharing.
    assert 0.0 < isolated_attainment < 1.0
    assert summaries["interactive"].attainment >= isolated_attainment
    # Best-effort absorbs the overload: it takes every shed, interactive none.
    assert summaries["interactive"].shed == 0
    assert summaries["best-effort"].shed > 0
    assert summaries["best-effort"].shed == len(shared.shed_requests)
    # Cross-check: the isolated run is itself invariant-clean.
    check_all(isolated_report, tagged)


def test_priority_policy_beats_tier_blind_deadline_policy():
    """Same stream, same fleet: tiering must not be a no-op."""
    _, merged = _streams()
    prio = _shared_report(merged, PriorityDeadlineBatcher(batch_size=8, timeout_s=0.01))
    plain = _shared_report(merged, DeadlineBatcher(batch_size=8, timeout_s=0.01))
    prio_att = prio.class_summaries["interactive"].attainment
    plain_att = plain.class_summaries["interactive"].attainment
    assert prio_att >= plain_att
    assert prio_att == pytest.approx(1.0)


def test_preemption_defers_but_never_loses_best_effort_work():
    """Every best-effort request is either completed or an accounted shed."""
    _, merged = _streams()
    shared = _shared_report(merged, PriorityDeadlineBatcher(batch_size=8, timeout_s=0.01))
    summary = shared.class_summaries["best-effort"]
    assert summary.completed + summary.shed == summary.offered == NUM_EACH
    completed_ids = {
        r.request.request_id
        for r in shared.records
        if r.request.request_class == "best-effort"
    }
    shed_ids = {
        r.request_id for r in shared.shed_requests if r.request_class == "best-effort"
    }
    assert not completed_ids & shed_ids
    assert len(completed_ids) + len(shed_ids) == NUM_EACH
