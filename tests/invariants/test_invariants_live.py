"""The invariants hold on the live gateway (real asyncio, fake device).

The gateway runs the same dispatch core as the simulator, so the same
conservation / immutability / work-conservation checkers apply to its
report.  A deterministic constant-latency device keeps every scenario in
tens of milliseconds of wall time.
"""

from __future__ import annotations

import asyncio

from invariant_harness import check_all
from repro.devices import BatchExecution, Device
from repro.live import LiveGateway
from repro.serving import TimeoutBatcher


class ConstantDevice(Device):
    """Fixed-latency device: every batch takes exactly ``latency`` seconds."""

    name = "constant"
    backend = "fake"

    def __init__(self, latency=0.01, **kwargs):
        self.latency = latency
        super().__init__(**kwargs)

    def execute(self, lengths):
        return BatchExecution(
            device=self.name,
            lengths=list(lengths),
            latency_seconds=self.latency,
            completion_offsets=[self.latency] * len(lengths),
            admit_seconds=self.latency,
        )


#: Submission plan: (class name or None, count) bursts, submitted
#: back-to-back so the per-class queue limit actually binds.
PLAN = [("interactive", 8), ("batch", 6), ("best-effort", 10), (None, 4)]


def _run_gateway(class_queue_limits=None, max_queue_depth=None):
    async def scenario():
        gateway = LiveGateway(
            [ConstantDevice(latency=0.02), ConstantDevice(latency=0.02)],
            "mrpc",
            batch_policy=TimeoutBatcher(batch_size=4, timeout_s=0.005),
            max_queue_depth=max_queue_depth,
            class_queue_limits=class_queue_limits,
        )
        await gateway.start()
        offered = []
        for name, count in PLAN:
            for _ in range(count):
                result = gateway.submit(length=32, request_class=name)
                offered.append(result.request)
        stats = await gateway.shutdown()
        return gateway, offered, stats

    return asyncio.run(scenario())


def test_live_invariants_with_class_limits():
    gateway, offered, stats = _run_gateway(class_queue_limits={"best-effort": 2})
    report = gateway.report
    check_all(report, offered)
    # The best-effort burst of 10 against a limit of 2 must shed, and every
    # shed lands in the admission bucket of its own class.
    classes = stats["classes"]
    assert classes["best-effort"]["shed"] > 0
    assert classes["best-effort"]["shed"] == classes["best-effort"]["shed_admission"]
    for name in ("interactive", "batch", "untagged"):
        assert classes[name]["shed"] == 0, name
    assert sum(c["offered"] for c in classes.values()) == len(offered)


def test_live_invariants_untagged_run_has_no_class_block():
    async def scenario():
        gateway = LiveGateway(
            [ConstantDevice(latency=0.01)],
            "mrpc",
            batch_policy=TimeoutBatcher(batch_size=4, timeout_s=0.005),
        )
        await gateway.start()
        offered = [gateway.submit(length=32).request for _ in range(8)]
        stats = await gateway.shutdown()
        return gateway, offered, stats

    gateway, offered, stats = asyncio.run(scenario())
    check_all(gateway.report, offered)
    assert "classes" not in stats
    assert gateway.report.class_summaries is None
