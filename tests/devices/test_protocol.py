"""Protocol-conformance suite run against every registered device.

Any backend registered under ``kind="device"`` must satisfy the Device
contract: monotone batch latency in sequence length, non-negative energy (or
None when unsupported), occupancy bounded to [0, 1], per-request completion
offsets inside the batch window, an admission interval no larger than the
batch latency, and a JSON-ready ``describe()``.  Plug-in devices registered
by third parties are picked up automatically.
"""

from __future__ import annotations

import json

import pytest

import repro.devices  # noqa: F401 - imports register the device catalog
from repro.devices import (
    AnalyticalDevice,
    BatchExecution,
    CycleAccurateDevice,
    Device,
    build_device,
)
from repro.registry import REGISTRY
from repro.transformer.configs import MRPC, ModelConfig

#: Small model so cycle-accurate builds stay fast.
_SMALL_MODEL = ModelConfig(name="dev-2L", num_layers=2, hidden_dim=768, num_heads=12)

DEVICE_NAMES = REGISTRY.available("device")


@pytest.fixture(scope="module")
def devices() -> dict[str, Device]:
    return {
        name: build_device(name, model=_SMALL_MODEL, dataset="mrpc")
        for name in DEVICE_NAMES
    }


@pytest.fixture
def device(devices, request) -> Device:
    return devices[request.param]


def pytest_generate_tests(metafunc):
    if "device" in metafunc.fixturenames:
        metafunc.parametrize("device", DEVICE_NAMES, indirect=True, ids=str)


class TestDeviceConformance:
    def test_catalog_covers_both_backend_families(self):
        assert {"sparse-fpga", "baseline-fpga", "gpu-rtx6000", "cpu-xeon"} <= set(DEVICE_NAMES)

    def test_latency_is_positive_and_monotone_in_length(self, device):
        short = device.batch_latency_seconds([MRPC.min_length])
        long = device.batch_latency_seconds([MRPC.max_length])
        assert 0 < short <= long

    def test_latency_is_monotone_in_batch_size(self, device):
        one = device.batch_latency_seconds([MRPC.avg_length])
        four = device.batch_latency_seconds([MRPC.avg_length] * 4)
        assert one <= four

    def test_energy_is_none_or_non_negative(self, device):
        energy = device.energy_joules([MRPC.avg_length] * 4)
        assert energy is None or energy >= 0

    def test_execution_shape(self, device):
        lengths = [MRPC.min_length, MRPC.avg_length, MRPC.max_length]
        execution = device.execute(lengths)
        assert isinstance(execution, BatchExecution)
        assert execution.lengths == lengths
        assert len(execution.completion_offsets) == len(lengths)
        assert all(0 < off <= execution.latency_seconds + 1e-9
                   for off in execution.completion_offsets)
        assert 0 < execution.admit_seconds <= execution.latency_seconds + 1e-9

    def test_occupancy_bounds_across_a_dispatch(self, device):
        device.reset()
        assert device.occupancy(0.0) == 0.0
        execution = device.execute([MRPC.avg_length] * 4)
        device.dispatch(execution, 0.0)
        for instant in (0.0, execution.admit_seconds / 2, execution.admit_seconds,
                        execution.latency_seconds, 2 * execution.latency_seconds):
            assert 0.0 <= device.occupancy(instant) <= 1.0
        assert device.occupancy(0.0) == 1.0
        assert device.occupancy(execution.latency_seconds) == 0.0
        device.reset()
        assert device.occupancy(0.0) == 0.0

    def test_next_start_respects_the_serving_discipline(self, device):
        execution = device.execute([MRPC.avg_length] * 4)
        device.reset(continuous_batching=False)
        device.dispatch(execution, 0.0)
        blocking = device.next_start(0.0)
        device.reset(continuous_batching=True)
        device.dispatch(execution, 0.0)
        continuous = device.next_start(0.0)
        assert blocking == pytest.approx(execution.latency_seconds)
        assert continuous == pytest.approx(execution.admit_seconds)
        assert continuous <= blocking

    def test_busy_seconds_merges_overlapping_admissions(self, device):
        execution = device.execute([MRPC.avg_length] * 4)
        device.reset(continuous_batching=True)
        device.dispatch(execution, 0.0)
        device.dispatch(execution, execution.admit_seconds)
        busy = device.busy_seconds()
        assert busy <= execution.admit_seconds + execution.latency_seconds + 1e-9
        assert busy >= execution.latency_seconds

    def test_describe_is_json_ready(self, device):
        description = device.describe()
        assert description["name"] == device.name
        assert description["backend"] in ("cycle-accurate", "analytical")
        json.dumps(description)


class TestAdapters:
    def test_cycle_accurate_pipeline_admits_before_draining(self):
        device = build_device("sparse-fpga", model=_SMALL_MODEL, dataset="mrpc")
        execution = device.execute([MRPC.avg_length] * 4)
        assert execution.admit_seconds < execution.latency_seconds
        assert execution.schedule is not None
        assert execution.utilization is not None

    def test_analytical_platform_serializes_batches(self):
        device = build_device("gpu-rtx6000", model=_SMALL_MODEL)
        execution = device.execute([MRPC.avg_length] * 4)
        assert execution.admit_seconds == pytest.approx(execution.latency_seconds)
        assert execution.schedule is None

    def test_execution_cache_returns_identical_results(self):
        device = build_device("sparse-fpga", model=_SMALL_MODEL, dataset="mrpc")
        a = device.execute([60, 80, 100])
        b = device.execute([60, 80, 100])
        # The shared cache returns the same simulated schedule, not a re-run.
        assert b.schedule is a.schedule
        assert b.completion_offsets == a.completion_offsets
        assert b.latency_seconds == a.latency_seconds
        assert device.cache_hits >= 1

    def test_execution_cache_shared_across_permutations_and_devices(self):
        device = build_device("sparse-fpga", model=_SMALL_MODEL, dataset="mrpc")
        twin = build_device("sparse-fpga", model=_SMALL_MODEL, dataset="mrpc")
        a = device.execute([60, 80, 100])
        b = twin.execute([100, 60, 80])  # same multiset, different order & device
        assert twin.cache_hits >= 1
        assert b.schedule is a.schedule
        assert b.latency_seconds == a.latency_seconds
        # Offsets follow each call's own request order.
        by_length_a = dict(zip(a.lengths, a.completion_offsets))
        by_length_b = dict(zip(b.lengths, b.completion_offsets))
        assert by_length_a == by_length_b

    def test_analytical_device_requires_model_config(self):
        from repro.platforms.devices import RTX_6000

        with pytest.raises(ValueError, match="model_config"):
            AnalyticalDevice(RTX_6000)

    def test_analytical_device_rejects_unknown_workload(self):
        from repro.platforms.devices import RTX_6000

        with pytest.raises(ValueError, match="workload"):
            AnalyticalDevice(RTX_6000, model_config=_SMALL_MODEL, workload="training")

    def test_fpga_platform_wrapper_needs_no_model_config(self):
        from repro.platforms.fpga import build_proposed_fpga

        platform = build_proposed_fpga(_SMALL_MODEL, MRPC)
        device = AnalyticalDevice(platform, name="fpga-platform")
        execution = device.execute([MRPC.avg_length] * 2)
        assert execution.latency_seconds > 0

    def test_wrapping_an_accelerator_directly(self):
        from repro.hardware.accelerator import build_sparse_accelerator

        accelerator = build_sparse_accelerator(
            _SMALL_MODEL, top_k=30, avg_seq=MRPC.avg_length, max_seq=MRPC.max_length
        )
        device = CycleAccurateDevice(accelerator)
        assert device.name == accelerator.name
        assert device.scheduler_name == "length-aware"
