"""Heterogeneous fleets, device-level continuous batching, and admission control."""

from __future__ import annotations

import json

import pytest

from repro.devices import build_device, build_fleet
from repro.serving import (
    PoissonArrivals,
    TimeoutBatcher,
    simulate_online,
)
from repro.serving.routing import LeastLoadedRouter, RoundRobinRouter
from repro.transformer.configs import MRPC, ModelConfig

_SMALL_MODEL = ModelConfig(name="fleet-2L", num_layers=2, hidden_dim=768, num_heads=12)


@pytest.fixture(scope="module")
def mixed_fleet():
    """One cycle-accurate sparse FPGA plus one analytical GPU."""
    return build_fleet(("sparse-fpga", "gpu-rtx6000"), model=_SMALL_MODEL, dataset="mrpc")


@pytest.fixture(scope="module")
def sparse_device():
    return build_device("sparse-fpga", model=_SMALL_MODEL, dataset="mrpc")


class TestHeterogeneousFleet:
    def test_mixed_fleet_report_covers_both_backends(self, mixed_fleet):
        """Acceptance: one simulate_online call runs cycle-accurate + analytical."""
        report = simulate_online(
            mixed_fleet,
            MRPC,
            PoissonArrivals(rate_qps=1500),
            num_requests=96,
            batch_policy=TimeoutBatcher(batch_size=16, timeout_s=0.005),
        )
        payload = json.loads(json.dumps(report.to_dict()))
        backends = {entry["backend"] for entry in payload["devices"]}
        assert backends == {"cycle-accurate", "analytical"}
        assert all(entry["batches"] > 0 for entry in payload["devices"])
        assert all(entry["energy_joules"] > 0 for entry in payload["devices"])

    def test_least_loaded_shifts_traffic_toward_the_faster_device(self):
        """The FPGA drains its backlog faster than the CPU, so it serves more."""
        fleet = build_fleet(("sparse-fpga", "cpu-xeon"), model=_SMALL_MODEL, dataset="mrpc")
        fast_latency = fleet[0].batch_latency_seconds([MRPC.avg_length] * 16)
        slow_latency = fleet[1].batch_latency_seconds([MRPC.avg_length] * 16)
        assert fast_latency < slow_latency
        report = simulate_online(
            fleet,
            MRPC,
            PoissonArrivals(rate_qps=2000),
            num_requests=192,
            batch_policy=TimeoutBatcher(batch_size=16, timeout_s=0.002),
            router=LeastLoadedRouter(),
        )
        fpga, cpu = report.devices
        assert fpga.num_requests > cpu.num_requests
        # Both still participate: least-loaded is load balancing, not pinning.
        assert cpu.num_batches > 0

    def test_round_robin_splits_traffic_evenly_regardless_of_speed(self):
        fleet = build_fleet(("sparse-fpga", "cpu-xeon"), model=_SMALL_MODEL, dataset="mrpc")
        report = simulate_online(
            fleet,
            MRPC,
            PoissonArrivals(rate_qps=2000),
            num_requests=192,
            batch_policy=TimeoutBatcher(batch_size=16, timeout_s=0.002),
            router=RoundRobinRouter(),
        )
        fpga, cpu = report.devices
        assert fpga.num_batches == pytest.approx(cpu.num_batches, abs=1)


class TestFleetConstruction:
    def test_duplicate_device_instances_are_rejected(self, sparse_device):
        """Serving state lives on the Device; aliasing one instance across
        two fleet slots would silently serialize the fleet."""
        with pytest.raises(ValueError, match="appears twice"):
            simulate_online(
                [sparse_device, sparse_device],
                MRPC,
                PoissonArrivals(rate_qps=100),
                num_requests=8,
            )

    def test_build_fleet_replicas_are_distinct_instances(self):
        fleet = build_fleet(("sparse-fpga",), model=_SMALL_MODEL, dataset="mrpc", replicas=2)
        assert fleet[0] is not fleet[1]

    def test_optional_knobs_reach_only_declaring_factories(self):
        """top_k lands on FPGA builds (aliases included) and is dropped by
        analytical devices; unknown keywords still raise."""
        fleet = build_fleet(
            ("fpga", "gpu-rtx6000"), model=_SMALL_MODEL, dataset="mrpc", top_k=4
        )
        assert fleet[0].accelerator.top_k == 4
        with pytest.raises(TypeError):
            build_fleet(("gpu-rtx6000",), model=_SMALL_MODEL, warp_speed=9)


class TestContinuousBatching:
    def test_saturated_qps_strictly_exceeds_blocking(self, sparse_device):
        """Acceptance: admitting into the draining pipeline raises capacity."""
        kwargs = dict(
            num_requests=96,
            batch_policy=TimeoutBatcher(batch_size=4, timeout_s=0.001),
        )
        arrivals = PoissonArrivals(rate_qps=5000)  # far past saturation
        blocking = simulate_online(sparse_device, MRPC, arrivals, **kwargs)
        continuous = simulate_online(
            sparse_device, MRPC, arrivals, continuous_batching=True, **kwargs
        )
        assert continuous.sustained_qps > blocking.sustained_qps
        assert continuous.continuous_batching and not blocking.continuous_batching

    def test_mixed_fleet_supports_continuous_batching(self, mixed_fleet):
        report = simulate_online(
            mixed_fleet,
            MRPC,
            PoissonArrivals(rate_qps=1500),
            num_requests=64,
            batch_policy=TimeoutBatcher(batch_size=8, timeout_s=0.002),
            continuous_batching=True,
        )
        assert report.num_completed == 64
        assert report.to_dict()["continuous_batching"] is True

    def test_analytical_devices_gain_nothing_from_continuous_batching(self):
        """No internal pipeline to stream into: batches serialize either way."""
        device = build_device("gpu-rtx6000", model=_SMALL_MODEL)
        kwargs = dict(
            num_requests=64,
            batch_policy=TimeoutBatcher(batch_size=8, timeout_s=0.001),
        )
        arrivals = PoissonArrivals(rate_qps=5000)
        blocking = simulate_online(device, MRPC, arrivals, **kwargs)
        continuous = simulate_online(
            device, MRPC, arrivals, continuous_batching=True, **kwargs
        )
        assert continuous.sustained_qps == pytest.approx(blocking.sustained_qps)

    def test_energy_is_not_double_counted_across_overlapping_batches(self, sparse_device):
        """Board power is charged over merged busy time, not per-batch sums."""
        kwargs = dict(
            num_requests=96,
            batch_policy=TimeoutBatcher(batch_size=4, timeout_s=0.001),
        )
        arrivals = PoissonArrivals(rate_qps=5000)
        blocking = simulate_online(sparse_device, MRPC, arrivals, **kwargs)
        continuous = simulate_online(
            sparse_device, MRPC, arrivals, continuous_batching=True, **kwargs
        )
        for report in (blocking, continuous):
            summary = report.devices[0]
            expected = sparse_device.power_watts * summary.busy_seconds
            assert summary.energy_joules == pytest.approx(expected)
        # Same work in less busy time: continuous batching saves energy.
        assert continuous.devices[0].energy_joules < blocking.devices[0].energy_joules

    def test_completion_order_and_causality_hold_under_continuous_batching(
        self, sparse_device
    ):
        report = simulate_online(
            sparse_device,
            MRPC,
            PoissonArrivals(rate_qps=5000),
            num_requests=64,
            batch_policy=TimeoutBatcher(batch_size=4, timeout_s=0.001),
            continuous_batching=True,
        )
        for record in report.records:
            assert record.request.arrival_time <= record.dispatch_time
            assert record.dispatch_time <= record.start_time
            assert record.start_time < record.completion_time


class TestAdmissionControl:
    def test_overload_sheds_and_bounds_tail_latency(self, sparse_device):
        kwargs = dict(
            num_requests=96,
            batch_policy=TimeoutBatcher(batch_size=4, timeout_s=0.001),
        )
        arrivals = PoissonArrivals(rate_qps=5000)
        unshed = simulate_online(sparse_device, MRPC, arrivals, **kwargs)
        shed = simulate_online(
            sparse_device, MRPC, arrivals, max_queue_depth=8, **kwargs
        )
        assert shed.num_shed > 0
        assert shed.num_completed + shed.num_shed == shed.num_requests
        assert shed.latency_percentile(99) < unshed.latency_percentile(99)
        payload = shed.to_dict()
        assert payload["num_shed"] == shed.num_shed
        assert payload["shed_rate"] == pytest.approx(shed.num_shed / shed.num_requests)
        assert shed.as_row()["shed_rate"] > 0

    def test_light_load_sheds_nothing(self, sparse_device):
        report = simulate_online(
            sparse_device,
            MRPC,
            PoissonArrivals(rate_qps=100),
            num_requests=48,
            batch_policy=TimeoutBatcher(batch_size=4, timeout_s=0.001),
            max_queue_depth=8,
        )
        assert report.num_shed == 0
        assert report.shed_rate == 0.0

    def test_max_queue_depth_validation(self, sparse_device):
        with pytest.raises(ValueError, match="max_queue_depth"):
            simulate_online(
                sparse_device,
                MRPC,
                PoissonArrivals(rate_qps=100),
                num_requests=8,
                max_queue_depth=0,
            )


class TestSteadyStateStatistics:
    def test_zero_warmup_matches_raw_statistics(self, sparse_device):
        report = simulate_online(
            sparse_device, MRPC, PoissonArrivals(rate_qps=300), num_requests=64
        )
        assert report.steady_latency_percentile(99, 0.0) == report.latency_percentile(99)
        assert report.steady_qps(0.0) == report.sustained_qps

    def test_warmup_discards_the_cold_start(self, sparse_device):
        report = simulate_online(
            sparse_device, MRPC, PoissonArrivals(rate_qps=300), num_requests=64
        )
        steady = report.steady_records(0.25)
        cutoff = 0.25 * report.arrival_horizon_seconds
        assert steady
        assert all(r.request.arrival_time >= cutoff for r in steady)
        assert len(steady) < len(report.records)
        assert report.steady_qps(0.25) > 0

    def test_warmup_survives_overload_drain_tails(self, sparse_device):
        """The cutoff is based on arrivals, not the makespan: under overload
        the drain tail dwarfs the arrival window, and a makespan-based
        cutoff would silently discard every record."""
        report = simulate_online(
            sparse_device,
            MRPC,
            PoissonArrivals(rate_qps=5000),
            num_requests=96,
            batch_policy=TimeoutBatcher(batch_size=4, timeout_s=0.001),
        )
        assert report.arrival_horizon_seconds < 0.5 * report.makespan_seconds
        steady = report.steady_records(0.6)
        assert steady
        assert len(steady) < len(report.records)

    def test_warmup_fraction_is_validated(self, sparse_device):
        report = simulate_online(
            sparse_device, MRPC, PoissonArrivals(rate_qps=300), num_requests=16
        )
        with pytest.raises(ValueError):
            report.steady_records(1.0)
        with pytest.raises(ValueError):
            report.steady_records(-0.1)
