"""Shared schedule cache: correctness, sharing, quantization, and reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import CycleAccurateDevice, ScheduleCache
from repro.devices.schedule_cache import quantize_lengths, schedule_cache_enabled
from repro.hardware.accelerator import build_sparse_accelerator
from repro.scheduling.baselines import PaddedScheduler
from repro.scheduling.length_aware import LengthAwareScheduler
from repro.transformer.configs import ModelConfig

_MODEL = ModelConfig(name="cache-2L", num_layers=2, hidden_dim=768, num_heads=12)


@pytest.fixture(scope="module")
def accelerator():
    return build_sparse_accelerator(_MODEL, top_k=30, avg_seq=64, max_seq=128)


def _device(accelerator, **kwargs) -> CycleAccurateDevice:
    kwargs.setdefault("schedule_cache", ScheduleCache())
    return CycleAccurateDevice(accelerator, scheduler=LengthAwareScheduler(), **kwargs)


def _execution_fields(execution) -> tuple:
    return (
        execution.latency_seconds,
        execution.admit_seconds,
        execution.utilization,
        execution.energy_joules,
        tuple(execution.completion_offsets),
        tuple(execution.lengths),
    )


class TestCacheCorrectness:
    def test_cache_off_matches_cached_exactly(self, accelerator, monkeypatch):
        """Quantization off => cached results identical to uncached re-simulation."""
        rng = np.random.default_rng(3)
        batches = [
            [int(x) for x in rng.integers(16, 129, size=int(rng.integers(1, 7)))]
            for _ in range(12)
        ]
        batches += [list(reversed(batches[0])), sorted(batches[1]), batches[2]]

        cached_device = _device(accelerator)
        cached = [_execution_fields(cached_device.execute(batch)) for batch in batches]
        assert cached_device.cache_hits > 0  # permutations / repeats shared

        monkeypatch.setenv("REPRO_SCHEDULE_CACHE", "off")
        assert not schedule_cache_enabled()
        uncached_device = _device(accelerator)
        uncached = [_execution_fields(uncached_device.execute(batch)) for batch in batches]
        assert uncached_device.cache_hits == 0
        assert uncached_device.schedule_cache_stats() is None

        assert cached == uncached

    def test_permutations_share_one_entry(self, accelerator):
        cache = ScheduleCache()
        device = _device(accelerator, schedule_cache=cache)
        device.execute([100, 40, 70])
        device.execute([40, 70, 100])
        device.execute([70, 100, 40])
        assert len(cache) == 1
        assert device.cache_hits == 2

    def test_identical_designs_share_but_different_designs_do_not(self):
        acc_a = build_sparse_accelerator(_MODEL, top_k=30, avg_seq=64, max_seq=128)
        acc_b = build_sparse_accelerator(_MODEL, top_k=30, avg_seq=64, max_seq=128)
        acc_other = build_sparse_accelerator(_MODEL, top_k=16, avg_seq=64, max_seq=128)
        cache = ScheduleCache()
        first = CycleAccurateDevice(acc_a, name="a", schedule_cache=cache)
        twin = CycleAccurateDevice(acc_b, name="b", schedule_cache=cache)
        other = CycleAccurateDevice(acc_other, name="c", schedule_cache=cache)
        first.execute([90, 60])
        twin.execute([90, 60])
        assert twin.cache_hits == 1  # value-identical design shares
        other.execute([90, 60])
        assert other.cache_hits == 0  # different top_k => different latencies
        assert len(cache) == 2

    def test_different_schedulers_never_collide(self, accelerator):
        cache = ScheduleCache()
        aware = CycleAccurateDevice(
            accelerator, scheduler=LengthAwareScheduler(), schedule_cache=cache
        )
        padded = CycleAccurateDevice(
            accelerator, scheduler=PaddedScheduler(), schedule_cache=cache
        )
        a = aware.execute([100, 40])
        b = padded.execute([100, 40])
        assert padded.cache_hits == 0
        assert b.latency_seconds >= a.latency_seconds  # padding can't be faster

    def test_plugin_scheduler_without_value_repr_never_shares(self, accelerator):
        """Address-based reprs must not key the shared cache (stale-hit risk)."""

        class Plugin:
            name = "plugin"

            def __init__(self, factor):
                self.factor = factor

            def schedule(self, acc, lengths):
                return LengthAwareScheduler().schedule(acc, lengths)

        cache = ScheduleCache()
        first = CycleAccurateDevice(accelerator, scheduler=Plugin(1), schedule_cache=cache)
        second = CycleAccurateDevice(accelerator, scheduler=Plugin(2), schedule_cache=cache)
        first.execute([60, 40])
        second.execute([60, 40])
        assert second.cache_hits == 0
        assert len(cache) == 2
        # Same device re-probing its own key still hits.
        first.execute([60, 40])
        assert first.cache_hits == 1

    def test_padded_scheduler_offsets_follow_call_order(self, accelerator):
        device = CycleAccurateDevice(
            accelerator, scheduler=PaddedScheduler(), schedule_cache=ScheduleCache()
        )
        first = device.execute([40, 100])
        second = device.execute([100, 40])
        assert device.cache_hits == 1
        # Uniform billing: completion offsets depend on the slot, not the length.
        assert first.completion_offsets == second.completion_offsets


class TestQuantization:
    def test_quantize_lengths_rounds_up(self):
        assert quantize_lengths((1, 16, 17, 33), 16) == (16, 16, 32, 48)
        assert quantize_lengths((5, 7), 1) == (5, 7)
        with pytest.raises(ValueError):
            quantize_lengths((5,), 0)

    def test_bucketed_lengths_share_and_stay_conservative(self, accelerator):
        exact = _device(accelerator)
        bucketed = _device(accelerator, cache_length_bucket=16)
        a = bucketed.execute([50, 60])
        b = bucketed.execute([54, 52])  # same buckets (64, 64)
        assert bucketed.cache_hits == 1
        assert a.latency_seconds == b.latency_seconds
        # Rounding up never undercharges relative to exact billing.
        assert a.latency_seconds >= exact.execute([50, 60]).latency_seconds

    def test_invalid_bucket_rejected(self, accelerator):
        with pytest.raises(ValueError, match="cache_length_bucket"):
            CycleAccurateDevice(accelerator, cache_length_bucket=0)

    def test_quantization_never_rounds_past_a_fixed_pad_target(self, accelerator):
        """Regression: 115 -> 128 > pad_to=120 crashed the padded scheduler."""
        device = CycleAccurateDevice(
            accelerator,
            scheduler=PaddedScheduler(pad_to=120),
            cache_length_bucket=16,
            schedule_cache=ScheduleCache(),
        )
        execution = device.execute([115])
        assert execution.latency_seconds > 0
        # Lengths beyond pad_to still fail exactly like the unquantized call.
        with pytest.raises(ValueError, match="pad_to"):
            device.execute([121])


class TestCacheMechanics:
    def test_lru_eviction_caps_entries(self, accelerator):
        cache = ScheduleCache(max_entries=2)
        device = _device(accelerator, schedule_cache=cache)
        device.execute([10])
        device.execute([20])
        device.execute([30])
        assert len(cache) == 2
        device.execute([10])  # evicted -> simulated again
        assert device.cache_misses == 4

    def test_stats_and_describe(self, accelerator):
        cache = ScheduleCache()
        device = _device(accelerator, schedule_cache=cache)
        device.execute([80, 40])
        device.execute([40, 80])
        stats = device.schedule_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        description = device.describe()
        assert description["schedule_cache"]["hits"] == 1
        assert description["schedule_cache"]["shared"]["entries"] == 1
        probes = device.schedule_cache_probes()
        assert probes["total"] == 2
        assert len(probes["unique"]) == 1

    def test_reset_clears_run_counters_not_shared_entries(self, accelerator):
        cache = ScheduleCache()
        device = _device(accelerator, schedule_cache=cache)
        device.execute([80, 40])
        device.reset()
        assert device.cache_hits == 0 and device.cache_misses == 0
        assert len(cache) == 1  # shared entries survive across runs
        device.execute([80, 40])
        assert device.cache_hits == 1


class TestEvictionAccounting:
    def test_num_evictions_counter(self):
        cache = ScheduleCache(max_entries=2)
        cache.store("a", 1)
        cache.store("b", 2)
        assert cache.num_evictions == 0
        cache.store("c", 3)
        assert cache.num_evictions == 1
        assert cache.stats()["num_evictions"] == 1
        cache.clear()
        assert cache.num_evictions == 0

    def test_probe_sequence_recorded_in_order(self, accelerator):
        cache = ScheduleCache()
        device = _device(accelerator, schedule_cache=cache)
        device.execute([80, 40])
        device.execute([40, 80])
        device.execute([32])
        probes = device.schedule_cache_probes()
        assert len(probes["sequence"]) == probes["total"] == 3
        stamps = [stamp for stamp, _ in probes["sequence"]]
        assert stamps == sorted(stamps)
        digests = [digest for _, digest in probes["sequence"]]
        assert digests[0] == digests[1] != digests[2]  # permutation shares a key

    def test_replay_is_exact_past_capacity(self):
        """Sequence replay must count re-misses after eviction; set replay can't."""
        from types import SimpleNamespace

        from repro.evaluation.serving_sweep import _replay_cache_accounting

        # Stream A B C A against a 2-entry LRU: storing C evicts A, so the
        # second A probe is a miss again (4 misses, 2 evictions, 0 hits).
        probes = {
            "total": 4,
            "unique": ["A", "B", "C"],
            "sequence": ["A", "B", "C", "A"],
        }
        point = SimpleNamespace(
            report=SimpleNamespace(schedule_cache_probes=probes), cache_stats=None
        )
        result = SimpleNamespace(points=[point], schedule_cache=None)
        _replay_cache_accounting(result, [], max_entries=2)
        assert point.cache_stats == {
            "hits": 0,
            "misses": 4,
            "hit_rate": 0.0,
            "num_evictions": 2,
        }
        assert result.schedule_cache == {
            "hits": 0,
            "misses": 4,
            "hit_rate": 0.0,
            "num_evictions": 2,
        }

    def test_replay_matches_live_cache_counters(self, accelerator):
        """Replaying a run's probe stream reproduces the live hit/miss split."""
        from types import SimpleNamespace

        from repro.evaluation.serving_sweep import _replay_cache_accounting

        cache = ScheduleCache(max_entries=2)
        device = _device(accelerator, schedule_cache=cache)
        for batch in ([10], [20], [30], [10], [30], [20]):
            device.execute(batch)
        probes = device.schedule_cache_probes()
        point = SimpleNamespace(
            report=SimpleNamespace(schedule_cache_probes=probes), cache_stats=None
        )
        result = SimpleNamespace(points=[point], schedule_cache=None)
        _replay_cache_accounting(result, [], max_entries=2)
        assert point.cache_stats["hits"] == device.cache_hits
        assert point.cache_stats["misses"] == device.cache_misses
        assert point.cache_stats.get("num_evictions", 0) == cache.num_evictions
