"""Opt-in disk persistence of the shared schedule cache."""

from __future__ import annotations

import pickle

import pytest

from repro.devices import CycleAccurateDevice, ScheduleCache
from repro.devices import schedule_cache as sc
from repro.hardware.accelerator import build_sparse_accelerator
from repro.scheduling.length_aware import LengthAwareScheduler
from repro.transformer.configs import ModelConfig

_MODEL = ModelConfig(name="persist-2L", num_layers=2, hidden_dim=768, num_heads=12)


@pytest.fixture(scope="module")
def accelerator():
    return build_sparse_accelerator(_MODEL, top_k=30, avg_seq=64, max_seq=128)


def _device(accelerator, cache) -> CycleAccurateDevice:
    return CycleAccurateDevice(
        accelerator, scheduler=LengthAwareScheduler(), schedule_cache=cache
    )


def _fields(execution) -> tuple:
    return (
        execution.latency_seconds,
        execution.admit_seconds,
        execution.utilization,
        execution.energy_joules,
        tuple(execution.completion_offsets),
    )


class TestSnapshotRoundTrip:
    def test_saved_entries_reload_with_exact_numbers(self, accelerator, tmp_path):
        warm_cache = ScheduleCache()
        warm = _device(accelerator, warm_cache)
        batches = [[64, 48, 128], [32], [96, 96]]
        expected = [_fields(warm.execute(batch)) for batch in batches]
        assert warm_cache.save_dir(str(tmp_path)) == len(warm_cache)

        cold_cache = ScheduleCache()
        assert cold_cache.load_dir(str(tmp_path)) == len(warm_cache)
        cold = _device(accelerator, cold_cache)
        cold.reset()
        results = [_fields(cold.execute(batch)) for batch in batches]
        assert results == expected
        assert cold.cache_hits == len(batches)
        assert cold.cache_misses == 0

    def test_disk_warmed_hit_drops_schedule_object_only(self, accelerator, tmp_path):
        # The canonical ScheduleResult holds unpicklable closures; snapshots
        # drop it, so a disk-warmed hit serves numbers but no schedule --
        # the same contract the parallel sweep's remote workers have.
        warm_cache = ScheduleCache()
        _device(accelerator, warm_cache).execute([64, 48])
        warm_cache.save_dir(str(tmp_path))
        cold_cache = ScheduleCache()
        cold_cache.load_dir(str(tmp_path))
        execution = _device(accelerator, cold_cache).execute([64, 48])
        assert execution.schedule is None
        assert execution.latency_seconds > 0

    def test_empty_cache_writes_nothing(self, tmp_path):
        assert ScheduleCache().save_dir(str(tmp_path)) == 0
        assert list(tmp_path.iterdir()) == []

    def test_merge_skips_corrupt_and_foreign_files(self, accelerator, tmp_path):
        cache = ScheduleCache()
        _device(accelerator, cache).execute([64])
        cache.save_dir(str(tmp_path))
        (tmp_path / "schedule-cache-9999.pkl").write_bytes(b"torn snapshot")
        (tmp_path / "schedule-cache-888.pkl").write_bytes(pickle.dumps({"not": "list"}))
        (tmp_path / "unrelated.txt").write_text("ignore me")
        merged = ScheduleCache()
        assert merged.load_dir(str(tmp_path)) == len(cache)

    def test_load_missing_directory_is_noop(self, tmp_path):
        assert ScheduleCache().load_dir(str(tmp_path / "nope")) == 0


class TestEnvironmentOptIn:
    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHEDULE_CACHE_DIR", raising=False)
        assert sc.persistent_cache_dir() is None
        assert sc.persist_schedule_cache() == 0

    def test_kill_switch_also_disables_persistence(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCHEDULE_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SCHEDULE_CACHE", "off")
        assert sc.persistent_cache_dir() is None

    def test_persist_writes_global_cache(self, accelerator, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCHEDULE_CACHE_DIR", str(tmp_path))
        device = CycleAccurateDevice(accelerator, scheduler=LengthAwareScheduler())
        device.reset()
        device.execute([64, 32])
        assert sc.persist_schedule_cache() == len(sc.GLOBAL_SCHEDULE_CACHE)
        snapshots = list(tmp_path.glob("schedule-cache-*.pkl"))
        assert len(snapshots) == 1

    def test_ensure_loaded_is_once_per_directory(self, accelerator, monkeypatch, tmp_path):
        # Seed a snapshot from a private cache, then point the env at it.
        seed_cache = ScheduleCache()
        _device(accelerator, seed_cache).execute([48, 48, 96])
        seed_cache.save_dir(str(tmp_path))

        monkeypatch.setenv("REPRO_SCHEDULE_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(sc, "_LOADED_DIRS", set())
        before = len(sc.GLOBAL_SCHEDULE_CACHE)
        sc.ensure_persistent_cache_loaded()
        first = len(sc.GLOBAL_SCHEDULE_CACHE)
        assert first >= before
        assert str(tmp_path) in sc._LOADED_DIRS
        # A second call must not re-read the directory.
        sc.ensure_persistent_cache_loaded()
        assert len(sc.GLOBAL_SCHEDULE_CACHE) == first

    def test_device_reset_triggers_load(self, accelerator, monkeypatch, tmp_path):
        seed_cache = ScheduleCache()
        seed = _device(accelerator, seed_cache)
        expected = _fields(seed.execute([80, 80]))
        seed_cache.save_dir(str(tmp_path))

        monkeypatch.setenv("REPRO_SCHEDULE_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(sc, "_LOADED_DIRS", set())
        device = CycleAccurateDevice(accelerator, scheduler=LengthAwareScheduler())
        device.reset()  # loads the snapshot into the global cache
        hits_before = device.cache_hits
        assert _fields(device.execute([80, 80])) == expected
        assert device.cache_hits == hits_before + 1
