"""Tests for the Table 2 energy-efficiency accounting."""

from __future__ import annotations

import pytest

from repro import config as global_config
from repro.platforms.base import PlatformResult
from repro.platforms.energy import (
    LITERATURE_TABLE2_ROWS,
    energy_report_from_result,
)


def _result(latency=0.1, useful=1e12, executed=2e12, power=50.0):
    return PlatformResult(
        platform="test",
        latency_seconds=latency,
        useful_ops=useful,
        executed_ops=executed,
        power_watts=power,
    )


class TestEnergyReport:
    def test_useful_ops_convention(self):
        report = energy_report_from_result(_result(), accuracy_drop_percent=1.5)
        assert report.throughput_gops == pytest.approx(1e12 / 0.1 / 1e9)
        assert report.energy_efficiency_gopj == pytest.approx(1e12 / 1e9 / (0.1 * 50.0))
        assert report.accuracy_drop_percent == 1.5
        assert report.source == "measured"

    def test_executed_ops_convention(self):
        report = energy_report_from_result(_result(), use_useful_ops=False)
        assert report.throughput_gops == pytest.approx(2e13 / 1e9)

    def test_as_row_serialization(self):
        row = energy_report_from_result(_result(), accuracy_drop_percent=2.0).as_row()
        assert set(row) == {
            "work_platform",
            "throughput_gops",
            "energy_eff_gopj",
            "accuracy_drop_percent",
            "source",
        }

    def test_zero_latency_guard(self):
        report = energy_report_from_result(_result(latency=0.0))
        assert report.throughput_gops == 0.0
        assert report.energy_efficiency_gopj is None


class TestLiteratureRows:
    def test_all_cited_designs_present(self):
        names = {row.platform for row in LITERATURE_TABLE2_ROWS}
        assert names == {"GPU V100: E.T.", "FPGA design [37]", "ASIC: A3", "ASIC: SpAtten"}

    def test_values_match_paper_table(self):
        for row in LITERATURE_TABLE2_ROWS:
            paper = global_config.PAPER_TABLE2[row.platform]
            assert row.throughput_gops == paper["throughput_gops"]
            assert row.energy_efficiency_gopj == paper["energy_eff_gopj"]
            assert row.source == "literature"

    def test_prior_fpga_design_has_no_energy_number(self):
        prior = next(r for r in LITERATURE_TABLE2_ROWS if r.platform == "FPGA design [37]")
        assert prior.energy_efficiency_gopj is None
        assert prior.as_row()["energy_eff_gopj"] is None
