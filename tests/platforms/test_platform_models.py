"""Tests for the analytical CPU/GPU platform models and the FPGA wrappers."""

from __future__ import annotations

import pytest

from repro.platforms.base import AnalyticalPlatform, PlatformResult
from repro.platforms.devices import JETSON_TX2, RTX_6000, V100_ET, XEON_5218
from repro.platforms.fpga import build_baseline_fpga, build_proposed_fpga
from repro.transformer.configs import BERT_BASE, MRPC, RTE, SQUAD_V11

_LENGTHS = [120, 90, 60, 45]


class TestAnalyticalPlatform:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AnalyticalPlatform(name="x", effective_gops=0, power_watts=10)
        with pytest.raises(ValueError):
            AnalyticalPlatform(name="x", effective_gops=10, power_watts=0)

    def test_padding_inflates_executed_work(self):
        executed = XEON_5218.executed_model_ops(BERT_BASE, _LENGTHS)
        useful = XEON_5218.useful_model_ops(BERT_BASE, _LENGTHS)
        assert executed > useful

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            XEON_5218.end_to_end(BERT_BASE, [])

    def test_latency_ordering_follows_throughput(self):
        cpu = XEON_5218.end_to_end(BERT_BASE, _LENGTHS)
        edge = JETSON_TX2.end_to_end(BERT_BASE, _LENGTHS)
        gpu = RTX_6000.end_to_end(BERT_BASE, _LENGTHS)
        assert cpu.latency_seconds > edge.latency_seconds > gpu.latency_seconds

    def test_attention_only_is_cheaper_than_end_to_end(self):
        full = RTX_6000.end_to_end(BERT_BASE, _LENGTHS)
        attention = RTX_6000.attention_only(BERT_BASE, _LENGTHS)
        assert attention.latency_seconds < full.latency_seconds

    def test_effective_gops_close_to_calibration(self):
        result = RTX_6000.end_to_end(BERT_BASE, [512] * 16)
        assert result.effective_gops == pytest.approx(1380.0, rel=0.1)

    def test_energy_accounting(self):
        result = XEON_5218.end_to_end(BERT_BASE, _LENGTHS)
        assert result.energy_joules == pytest.approx(result.latency_seconds * 125.0)
        assert result.energy_efficiency_gopj > 0

    def test_v100_row_has_higher_throughput_than_rtx(self):
        assert V100_ET.effective_gops > RTX_6000.effective_gops

    def test_platform_result_zero_latency_guard(self):
        result = PlatformResult(
            platform="x", latency_seconds=0.0, useful_ops=1.0, executed_ops=1.0, power_watts=1.0
        )
        assert result.effective_gops == 0.0
        assert result.energy_efficiency_gopj == 0.0


class TestFpgaPlatforms:
    @pytest.fixture(scope="class")
    def proposed(self):
        return build_proposed_fpga(BERT_BASE, RTE)

    @pytest.fixture(scope="class")
    def baseline(self):
        return build_baseline_fpga(BERT_BASE, RTE)

    def test_proposed_executes_less_work_than_it_is_credited_for(self, proposed):
        result = proposed.end_to_end(_LENGTHS)
        assert result.executed_ops < result.useful_ops

    def test_baseline_executes_padded_dense_work(self, baseline):
        result = baseline.end_to_end(_LENGTHS)
        assert result.executed_ops > result.useful_ops

    def test_proposed_faster_than_baseline(self, proposed, baseline):
        assert (
            proposed.end_to_end(_LENGTHS).latency_seconds
            < baseline.end_to_end(_LENGTHS).latency_seconds
        )

    def test_proposed_beats_cpu_by_large_margin(self, proposed):
        fpga = proposed.end_to_end(_LENGTHS)
        cpu = XEON_5218.end_to_end(BERT_BASE, _LENGTHS)
        assert cpu.latency_seconds / fpga.latency_seconds > 10

    def test_attention_only_speedup_exceeds_end_to_end_speedup(self, proposed, baseline):
        # Sparse attention shrinks the attention core far more than the whole
        # encoder, so the attention-only advantage is larger (Fig. 7b vs 7a).
        e2e = baseline.end_to_end(_LENGTHS).latency_seconds / proposed.end_to_end(
            _LENGTHS
        ).latency_seconds
        attn = baseline.attention_only(_LENGTHS).latency_seconds / proposed.attention_only(
            _LENGTHS
        ).latency_seconds
        assert attn > e2e

    def test_fpga_power_is_board_power(self, proposed):
        assert proposed.end_to_end(_LENGTHS).power_watts == pytest.approx(35.0)

    def test_schedule_exposes_timeline(self, proposed):
        result = proposed.schedule(_LENGTHS)
        assert result.makespan_cycles > 0
        assert result.timeline.verify_no_overlap_per_stage()

    def test_energy_efficiency_beats_gpu(self, proposed):
        # The headline Table 2 claim: at least 4x the GPU's GOP/J.
        fpga = proposed.end_to_end([RTE.avg_length] * 8 + [RTE.max_length] * 2)
        gpu = RTX_6000.end_to_end(BERT_BASE, [RTE.avg_length] * 8 + [RTE.max_length] * 2)
        assert fpga.energy_efficiency_gopj > 4 * gpu.energy_efficiency_gopj

    def test_designs_specialize_to_dataset_lengths(self):
        squad_design = build_proposed_fpga(BERT_BASE, SQUAD_V11)
        mrpc_design = build_proposed_fpga(BERT_BASE, MRPC)
        assert squad_design.accelerator.name != ""
        # Both fit the device even though their operating points differ widely.
        assert squad_design.accelerator.fits_capacity()
        assert mrpc_design.accelerator.fits_capacity()
