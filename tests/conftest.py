"""Shared fixtures for the test suite.

Most functional tests run on a deliberately tiny Transformer configuration so
the NumPy forward passes finish in milliseconds; the behaviour under test
(quantized Top-k selection, scheduling, resource accounting) does not depend
on model scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.transformer.configs import ModelConfig
from repro.transformer.model import TransformerModel
from repro.transformer.weights import generate_model_weights


@pytest.fixture(scope="session")
def tiny_config() -> ModelConfig:
    """A 2-layer, 4-head, 64-dim encoder used across functional tests."""
    return ModelConfig(
        name="tiny",
        num_layers=2,
        hidden_dim=64,
        num_heads=4,
        vocab_size=2000,
        max_position=256,
    )


@pytest.fixture(scope="session")
def tiny_weights(tiny_config):
    """Deterministic weights for the tiny configuration."""
    return generate_model_weights(tiny_config, seed=7)


@pytest.fixture(scope="session")
def tiny_model(tiny_config, tiny_weights) -> TransformerModel:
    """A dense-attention model built on the tiny configuration."""
    return TransformerModel(tiny_config, weights=tiny_weights)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_sequence(tiny_config):
    """A fixed 24-token input (token ids and segment ids)."""
    rng = np.random.default_rng(99)
    token_ids = rng.integers(1000, tiny_config.vocab_size, size=24)
    segment_ids = np.zeros(24, dtype=np.int64)
    return token_ids, segment_ids
