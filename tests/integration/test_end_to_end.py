"""Integration tests spanning the algorithm, hardware and scheduling layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sparse_attention import make_sparse_attention_impl
from repro.datasets.length_distributions import sample_lengths
from repro.datasets.tasks import build_proxy_task, evaluate_model_on_task
from repro.hardware.accelerator import build_sparse_accelerator
from repro.operators.encoder_graph import build_sparse_encoder_graph
from repro.platforms.devices import RTX_6000, XEON_5218
from repro.platforms.fpga import build_baseline_fpga, build_proposed_fpga
from repro.scheduling.length_aware import LengthAwareScheduler
from repro.scheduling.stage_allocation import allocate_stages, plan_to_accelerator
from repro.transformer.configs import BERT_BASE, MRPC, RTE, SQUAD_V11, ModelConfig
from repro.transformer.model import TransformerModel


class TestAlgorithmAccuracyPipeline:
    """Sparse attention plugged into a full model, scored on proxy tasks."""

    @pytest.fixture(scope="class")
    def teacher(self, tiny_config):
        return TransformerModel(tiny_config, seed=21)

    def test_moderate_sparsity_preserves_most_predictions(self, teacher):
        task = build_proxy_task(MRPC, teacher, num_examples=6, max_length_cap=64, seed=21)
        sparse = teacher.with_attention(make_sparse_attention_impl(top_k=30, quant_bits=1))
        scores = evaluate_model_on_task(sparse, task)
        assert scores["score"] >= 60.0

    def test_quantization_bits_affect_fidelity_ordering(self, teacher, rng, tiny_config):
        token_ids = rng.integers(1000, tiny_config.vocab_size, size=64)
        dense = teacher.encode(token_ids)
        deviations = {}
        for bits in (1, 4, 8):
            sparse = teacher.with_attention(make_sparse_attention_impl(top_k=8, quant_bits=bits))
            deviations[bits] = float(np.linalg.norm(sparse.encode(token_ids) - dense))
        assert deviations[8] <= deviations[1] + 1e-9

    def test_span_task_end_to_end(self, teacher):
        task = build_proxy_task(SQUAD_V11, teacher, num_examples=4, max_length_cap=80, seed=5)
        dense_score = evaluate_model_on_task(teacher, task)["score"]
        sparse = teacher.with_attention(make_sparse_attention_impl(top_k=20, quant_bits=1))
        sparse_score = evaluate_model_on_task(sparse, task)["score"]
        assert dense_score == pytest.approx(100.0)
        assert 0.0 <= sparse_score <= 100.0


class TestAlgorithm1ToPipeline:
    """Algorithm 1 stage plan -> accelerator -> length-aware schedule."""

    def test_plan_driven_accelerator_schedules_a_batch(self):
        model = ModelConfig(name="int-2L", num_layers=2, hidden_dim=768, num_heads=12)
        graph = build_sparse_encoder_graph(model, top_k=30)
        plan = allocate_stages(graph, avg_seq=68)
        accelerator = plan_to_accelerator(plan, model, max_seq=253, top_k=30)
        lengths = [int(x) for x in sample_lengths(RTE, 8, seed=3)]
        result = LengthAwareScheduler().schedule(accelerator, lengths)
        assert result.makespan_cycles > 0
        assert result.timeline.verify_no_overlap_per_stage()
        assert result.average_utilization > 0.5

    def test_factory_accelerator_matches_plan_accelerator_within_2x(self):
        # Two independent allocation paths (the canonical 3-stage factory and
        # Algorithm 1) should land in the same latency ballpark.
        model = ModelConfig(name="int-2L-b", num_layers=2, hidden_dim=768, num_heads=12)
        graph = build_sparse_encoder_graph(model, top_k=30)
        plan = allocate_stages(graph, avg_seq=96)
        planned = plan_to_accelerator(plan, model, max_seq=192, top_k=30)
        factory = build_sparse_accelerator(model, top_k=30, avg_seq=96, max_seq=192)
        ratio = planned.layer_latency_cycles(96) / factory.layer_latency_cycles(96)
        assert 0.3 < ratio < 3.0


class TestCrossPlatformConsistency:
    """The platform models must reproduce the paper's qualitative ordering."""

    @pytest.fixture(scope="class")
    def lengths(self):
        return [int(x) for x in sample_lengths(RTE, 16, seed=11)]

    def test_end_to_end_platform_ordering(self, lengths):
        proposed = build_proposed_fpga(BERT_BASE, RTE).end_to_end(lengths)
        baseline = build_baseline_fpga(BERT_BASE, RTE).end_to_end(lengths)
        gpu = RTX_6000.end_to_end(BERT_BASE, lengths)
        cpu = XEON_5218.end_to_end(BERT_BASE, lengths)
        # Proposed FPGA < GPU < FPGA baseline < CPU in latency for RTE.
        assert proposed.latency_seconds < gpu.latency_seconds
        assert gpu.latency_seconds < baseline.latency_seconds
        assert baseline.latency_seconds < cpu.latency_seconds

    def test_equivalent_throughput_exceeds_device_peak(self, lengths):
        # The proposed design's dense-equivalent throughput exceeds the 1.2
        # TOPS arithmetic peak because skipped work still counts -- the effect
        # behind the paper's 3.6 TOPS equivalent claim.
        proposed = build_proposed_fpga(BERT_BASE, SQUAD_V11)
        squad_lengths = [int(x) for x in sample_lengths(SQUAD_V11, 16, seed=11)]
        result = proposed.end_to_end(squad_lengths)
        padded_dense_ops = RTX_6000.executed_model_ops(BERT_BASE, squad_lengths)
        equivalent_gops = padded_dense_ops / result.latency_seconds / 1e9
        assert equivalent_gops > 1200.0

    def test_attention_speedup_larger_for_long_sequence_datasets(self):
        speedups = {}
        for dataset in (MRPC, SQUAD_V11):
            lengths = [int(x) for x in sample_lengths(dataset, 8, seed=7)]
            proposed = build_proposed_fpga(BERT_BASE, dataset).attention_only(lengths)
            cpu = XEON_5218.attention_only(BERT_BASE, lengths)
            speedups[dataset.name] = cpu.latency_seconds / proposed.latency_seconds
        assert speedups["SQuAD v1.1"] > speedups["MRPC"]
