"""Tests for the encoder stack, embeddings and the full task-head model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sparse_attention import make_sparse_attention_impl
from repro.transformer.embeddings import embed_tokens
from repro.transformer.encoder import encoder_forward, encoder_layer_forward
from repro.transformer.model import TransformerModel


class TestEmbeddings:
    def test_output_shape(self, tiny_weights, small_sequence):
        token_ids, segment_ids = small_sequence
        out = embed_tokens(token_ids, tiny_weights.embeddings, segment_ids)
        assert out.shape == (24, 64)

    def test_rows_are_layer_normalized(self, tiny_weights, small_sequence):
        token_ids, _ = small_sequence
        out = embed_tokens(token_ids, tiny_weights.embeddings)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-9)

    def test_out_of_vocab_rejected(self, tiny_weights):
        with pytest.raises(ValueError):
            embed_tokens(np.array([10**6]), tiny_weights.embeddings)

    def test_too_long_sequence_rejected(self, tiny_weights, tiny_config):
        ids = np.ones(tiny_config.max_position + 1, dtype=np.int64)
        with pytest.raises(ValueError):
            embed_tokens(ids, tiny_weights.embeddings)

    def test_segment_shape_mismatch_rejected(self, tiny_weights):
        with pytest.raises(ValueError):
            embed_tokens(np.array([1, 2, 3]), tiny_weights.embeddings, np.array([0, 1]))

    def test_batched_input_rejected(self, tiny_weights):
        with pytest.raises(ValueError):
            embed_tokens(np.ones((2, 5), dtype=np.int64), tiny_weights.embeddings)


class TestEncoder:
    def test_layer_preserves_shape(self, rng, tiny_weights, tiny_config):
        hidden = rng.normal(size=(15, 64))
        out = encoder_layer_forward(hidden, tiny_weights.layers[0], tiny_config.num_heads)
        assert out.shape == hidden.shape

    def test_stack_runs_all_layers(self, rng, tiny_weights):
        hidden = rng.normal(size=(10, 64))
        full = encoder_forward(hidden, tiny_weights)
        one = encoder_layer_forward(hidden, tiny_weights.layers[0], 4)
        assert not np.allclose(full, one)

    def test_outputs_are_layer_normalized(self, rng, tiny_weights):
        hidden = rng.normal(size=(10, 64))
        out = encoder_forward(hidden, tiny_weights)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-9)

    def test_custom_attention_impl_is_used(self, rng, tiny_weights, tiny_config):
        hidden = rng.normal(size=(20, 64))
        dense = encoder_forward(hidden, tiny_weights)
        sparse = encoder_forward(
            hidden, tiny_weights, attention_impl=make_sparse_attention_impl(top_k=3, quant_bits=1)
        )
        assert not np.allclose(dense, sparse)

    def test_sparse_with_full_k_matches_dense(self, rng, tiny_weights):
        hidden = rng.normal(size=(12, 64))
        dense = encoder_forward(hidden, tiny_weights)
        sparse = encoder_forward(
            hidden, tiny_weights, attention_impl=make_sparse_attention_impl(top_k=12, quant_bits=8)
        )
        assert np.allclose(dense, sparse, atol=1e-6)


class TestTransformerModel:
    def test_encode_shape(self, tiny_model, small_sequence):
        token_ids, segment_ids = small_sequence
        encoded = tiny_model.encode(token_ids, segment_ids=segment_ids)
        assert encoded.shape == (24, 64)

    def test_classification_output(self, tiny_model, small_sequence):
        token_ids, segment_ids = small_sequence
        out = tiny_model.classify(token_ids, segment_ids=segment_ids)
        assert out.logits.shape == (2,)
        assert out.probs.sum() == pytest.approx(1.0)
        assert out.prediction in (0, 1)

    def test_span_extraction_output(self, tiny_model, small_sequence):
        token_ids, segment_ids = small_sequence
        out = tiny_model.extract_span(token_ids, segment_ids=segment_ids)
        assert 0 <= out.start <= out.end < 24

    def test_span_respects_padding_mask(self, tiny_model, small_sequence):
        token_ids, segment_ids = small_sequence
        mask = np.zeros(24, dtype=bool)
        mask[:10] = True
        out = tiny_model.extract_span(token_ids, mask=mask, segment_ids=segment_ids)
        assert out.start < 10

    def test_with_attention_shares_weights(self, tiny_model):
        sparse = tiny_model.with_attention(make_sparse_attention_impl(top_k=4))
        assert sparse.weights is tiny_model.weights
        assert sparse.attention_impl is not None
        assert tiny_model.attention_impl is None

    def test_deterministic_predictions(self, tiny_model, small_sequence):
        token_ids, segment_ids = small_sequence
        a = tiny_model.classify(token_ids, segment_ids=segment_ids)
        b = tiny_model.classify(token_ids, segment_ids=segment_ids)
        assert np.array_equal(a.logits, b.logits)

    def test_model_generates_weights_when_not_provided(self, tiny_config):
        model = TransformerModel(tiny_config, seed=11)
        assert model.weights.config is tiny_config

    def test_sparse_model_differs_from_dense_on_long_input(self, tiny_model, rng, tiny_config):
        token_ids = rng.integers(1000, tiny_config.vocab_size, size=48)
        dense = tiny_model.classify(token_ids)
        sparse_model = tiny_model.with_attention(make_sparse_attention_impl(top_k=2, quant_bits=1))
        sparse = sparse_model.classify(token_ids)
        assert not np.allclose(dense.logits, sparse.logits)
