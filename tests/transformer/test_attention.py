"""Tests for dense multi-head attention."""

from __future__ import annotations

import numpy as np
import pytest

from repro.transformer.attention import (
    merge_heads,
    multi_head_attention,
    project_qkv,
    scaled_dot_product_attention,
    split_heads,
)


class TestHeadReshaping:
    def test_split_then_merge_is_identity(self, rng):
        x = rng.normal(size=(10, 64))
        assert np.allclose(merge_heads(split_heads(x, 4)), x)

    def test_split_shapes(self, rng):
        heads = split_heads(rng.normal(size=(6, 64)), 4)
        assert heads.shape == (4, 6, 16)

    def test_split_rejects_indivisible_hidden(self, rng):
        with pytest.raises(ValueError):
            split_heads(rng.normal(size=(6, 10)), 3)


class TestScaledDotProduct:
    def test_probabilities_normalized(self, rng):
        q = rng.normal(size=(7, 8))
        k = rng.normal(size=(7, 8))
        v = rng.normal(size=(7, 8))
        _, probs, _ = scaled_dot_product_attention(q, k, v)
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_scaling_by_sqrt_d(self, rng):
        q = rng.normal(size=(5, 16))
        k = rng.normal(size=(5, 16))
        v = rng.normal(size=(5, 16))
        _, _, scores = scaled_dot_product_attention(q, k, v)
        assert np.allclose(scores, q @ k.T / 4.0)

    def test_mask_blocks_positions(self, rng):
        q = rng.normal(size=(4, 8))
        k = rng.normal(size=(4, 8))
        v = rng.normal(size=(4, 8))
        mask = np.array([[True, True, False, False]])
        _, probs, _ = scaled_dot_product_attention(q, k, v, mask)
        assert np.all(probs[:, 2:] == 0.0)

    def test_identical_keys_give_uniform_attention(self):
        q = np.ones((3, 4))
        k = np.ones((5, 4))
        v = np.arange(20, dtype=float).reshape(5, 4)
        context, probs, _ = scaled_dot_product_attention(q, k, v)
        assert np.allclose(probs, 0.2)
        assert np.allclose(context, v.mean(axis=0))


class TestMultiHeadAttention:
    def test_output_shape(self, rng, tiny_weights):
        hidden = rng.normal(size=(12, 64))
        out = multi_head_attention(hidden, tiny_weights.layers[0].attention, 4)
        assert out.output.shape == (12, 64)
        assert out.probs.shape == (4, 12, 12)
        assert out.scores.shape == (4, 12, 12)

    def test_projection_shapes(self, rng, tiny_weights):
        hidden = rng.normal(size=(9, 64))
        q, k, v = project_qkv(hidden, tiny_weights.layers[0].attention)
        assert q.shape == k.shape == v.shape == (9, 64)

    def test_padding_mask_applied_to_all_heads(self, rng, tiny_weights):
        hidden = rng.normal(size=(10, 64))
        mask = np.array([True] * 7 + [False] * 3)
        out = multi_head_attention(hidden, tiny_weights.layers[0].attention, 4, mask=mask)
        assert np.all(out.probs[:, :, 7:] == 0.0)

    def test_deterministic(self, rng, tiny_weights):
        hidden = rng.normal(size=(8, 64))
        a = multi_head_attention(hidden, tiny_weights.layers[0].attention, 4)
        b = multi_head_attention(hidden, tiny_weights.layers[0].attention, 4)
        assert np.array_equal(a.output, b.output)

    def test_head_probabilities_normalized(self, rng, tiny_weights):
        hidden = rng.normal(size=(11, 64))
        out = multi_head_attention(hidden, tiny_weights.layers[0].attention, 4)
        assert np.allclose(out.probs.sum(axis=-1), 1.0)
