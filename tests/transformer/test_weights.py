"""Tests for synthetic weight generation."""

from __future__ import annotations

import numpy as np

from repro.transformer.weights import generate_model_weights


class TestWeightGeneration:
    def test_deterministic_for_same_seed(self, tiny_config):
        a = generate_model_weights(tiny_config, seed=3)
        b = generate_model_weights(tiny_config, seed=3)
        assert np.array_equal(a.layers[0].attention.wq, b.layers[0].attention.wq)
        assert np.array_equal(a.embeddings.token, b.embeddings.token)

    def test_different_seeds_differ(self, tiny_config):
        a = generate_model_weights(tiny_config, seed=3)
        b = generate_model_weights(tiny_config, seed=4)
        assert not np.array_equal(a.layers[0].attention.wq, b.layers[0].attention.wq)

    def test_shapes_match_config(self, tiny_config, tiny_weights):
        h = tiny_config.hidden_dim
        inter = tiny_config.intermediate_dim
        assert len(tiny_weights.layers) == tiny_config.num_layers
        layer = tiny_weights.layers[0]
        assert layer.attention.wq.shape == (h, h)
        assert layer.ffn_w1.shape == (h, inter)
        assert layer.ffn_w2.shape == (inter, h)
        assert tiny_weights.embeddings.token.shape == (tiny_config.vocab_size, h)
        assert tiny_weights.embeddings.position.shape == (tiny_config.max_position, h)

    def test_heads_present(self, tiny_weights):
        assert tiny_weights.classifier_w is not None
        assert tiny_weights.qa_w is not None
        assert tiny_weights.qa_w.shape[1] == 2

    def test_qa_head_optional(self, tiny_config):
        weights = generate_model_weights(tiny_config, seed=0, with_qa_head=False)
        assert weights.qa_w is None

    def test_classifier_width_follows_num_classes(self, tiny_config):
        weights = generate_model_weights(tiny_config, seed=0, num_classes=5)
        assert weights.classifier_w.shape[1] == 5

    def test_parameter_count_positive_and_consistent(self, tiny_config, tiny_weights):
        count = tiny_weights.num_parameters()
        assert count > tiny_config.num_parameters  # embeddings and heads included

    def test_layer_norm_parameters_initialized_to_identity(self, tiny_weights):
        layer = tiny_weights.layers[0]
        assert np.all(layer.attn_ln_gamma == 1.0)
        assert np.all(layer.ffn_ln_beta == 0.0)

    def test_weight_scale_is_reasonable(self, tiny_weights, tiny_config):
        # Fan-in scaled init: std approximately 1/sqrt(hidden).
        std = tiny_weights.layers[0].attention.wq.std()
        assert 0.5 / np.sqrt(tiny_config.hidden_dim) < std < 2.0 / np.sqrt(tiny_config.hidden_dim)
