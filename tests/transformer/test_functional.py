"""Tests for the numerical primitives (softmax, GELU, LayerNorm, masking)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.transformer.functional import (
    attention_mask_from_lengths,
    gelu,
    layer_norm,
    linear,
    masked_softmax,
    relu,
    softmax,
    stable_exp,
)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.normal(size=(5, 9))
        assert np.allclose(softmax(x).sum(axis=-1), 1.0)

    def test_invariant_to_constant_shift(self, rng):
        x = rng.normal(size=(4, 6))
        assert np.allclose(softmax(x), softmax(x + 1000.0))

    def test_handles_large_values_without_overflow(self):
        x = np.array([1e4, 1e4 + 1.0])
        probs = softmax(x)
        assert np.all(np.isfinite(probs))
        assert probs[1] > probs[0]

    def test_axis_argument(self, rng):
        x = rng.normal(size=(3, 4))
        assert np.allclose(softmax(x, axis=0).sum(axis=0), 1.0)

    def test_stable_exp_matches_shifted_exponential(self, rng):
        x = rng.normal(size=(2, 5))
        expected = np.exp(x - x.max(axis=-1, keepdims=True))
        assert np.allclose(stable_exp(x), expected)


class TestMaskedSoftmax:
    def test_masked_positions_get_zero(self, rng):
        scores = rng.normal(size=(4, 6))
        mask = np.array([True, True, False, True, False, True])
        probs = masked_softmax(scores, mask[None, :])
        assert np.all(probs[:, ~mask] == 0.0)
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_none_mask_is_plain_softmax(self, rng):
        scores = rng.normal(size=(3, 5))
        assert np.allclose(masked_softmax(scores, None), softmax(scores))

    def test_fully_masked_row_is_all_zero(self):
        scores = np.ones((2, 3))
        probs = masked_softmax(scores, np.zeros(3, dtype=bool)[None, :])
        assert np.all(probs == 0.0)


class TestActivations:
    def test_gelu_at_zero(self):
        assert gelu(np.array([0.0]))[0] == pytest.approx(0.0)

    def test_gelu_approaches_identity_for_large_inputs(self):
        x = np.array([10.0, -10.0])
        out = gelu(x)
        assert out[0] == pytest.approx(10.0, rel=1e-3)
        assert out[1] == pytest.approx(0.0, abs=1e-3)

    def test_gelu_is_monotone_on_positive_axis(self):
        x = np.linspace(0, 5, 100)
        assert np.all(np.diff(gelu(x)) > 0)

    def test_relu(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), np.array([0.0, 0.0, 2.0]))


class TestLayerNorm:
    def test_output_has_zero_mean_unit_variance(self, rng):
        x = rng.normal(loc=3.0, scale=5.0, size=(6, 32))
        out = layer_norm(x, np.ones(32), np.zeros(32))
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        assert np.allclose(out.var(axis=-1), 1.0, atol=1e-3)

    def test_gamma_beta_applied(self, rng):
        x = rng.normal(size=(4, 8))
        gamma = np.full(8, 2.0)
        beta = np.full(8, -1.0)
        out = layer_norm(x, gamma, beta)
        base = layer_norm(x, np.ones(8), np.zeros(8))
        assert np.allclose(out, 2.0 * base - 1.0)

    def test_constant_row_stays_finite(self):
        x = np.full((1, 16), 3.0)
        out = layer_norm(x, np.ones(16), np.zeros(16))
        assert np.all(np.isfinite(out))


class TestLinearAndMask:
    def test_linear_matches_numpy(self, rng):
        x = rng.normal(size=(5, 8))
        w = rng.normal(size=(8, 3))
        b = rng.normal(size=3)
        assert np.allclose(linear(x, w, b), x @ w + b)

    def test_linear_without_bias(self, rng):
        x = rng.normal(size=(5, 8))
        w = rng.normal(size=(8, 3))
        assert np.allclose(linear(x, w), x @ w)

    def test_mask_from_lengths(self):
        mask = attention_mask_from_lengths(np.array([2, 4]), 5)
        assert mask.shape == (2, 5)
        assert list(mask[0]) == [True, True, False, False, False]
        assert list(mask[1]) == [True, True, True, True, False]

    def test_mask_rejects_lengths_exceeding_max(self):
        with pytest.raises(ValueError):
            attention_mask_from_lengths(np.array([10]), 5)

    def test_mask_rejects_negative_lengths(self):
        with pytest.raises(ValueError):
            attention_mask_from_lengths(np.array([-1]), 5)


class TestFunctionalProperties:
    @given(
        arrays(np.float64, shape=st.tuples(st.integers(1, 6), st.integers(2, 12)),
               elements=st.floats(-50, 50)),
    )
    @settings(max_examples=60, deadline=None)
    def test_softmax_is_a_distribution(self, x):
        probs = softmax(x)
        assert np.all(probs >= 0)
        assert np.allclose(probs.sum(axis=-1), 1.0)

    @given(
        arrays(np.float64, shape=st.tuples(st.integers(1, 5), st.integers(4, 16)),
               elements=st.floats(-30, 30)),
    )
    @settings(max_examples=60, deadline=None)
    def test_layer_norm_centers_rows(self, x):
        dim = x.shape[-1]
        out = layer_norm(x, np.ones(dim), np.zeros(dim))
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-7)
