"""Tests for post-training 8-bit model quantization (Section 5.1 assumption)."""

from __future__ import annotations

import numpy as np

from repro.transformer.model import TransformerModel
from repro.transformer.quantized import quantize_model_weights, weight_quantization_error


class TestQuantizedModelWeights:
    def test_original_weights_untouched(self, tiny_weights):
        original = tiny_weights.layers[0].attention.wq.copy()
        quantize_model_weights(tiny_weights, bits=8)
        assert np.array_equal(tiny_weights.layers[0].attention.wq, original)

    def test_quantized_weights_differ_but_slightly(self, tiny_weights):
        quantized = quantize_model_weights(tiny_weights, bits=8)
        original = tiny_weights.layers[0].attention.wq
        approx = quantized.layers[0].attention.wq
        assert not np.array_equal(original, approx)
        assert np.max(np.abs(original - approx)) < 0.05 * np.max(np.abs(original))

    def test_layernorm_parameters_kept_full_precision(self, tiny_weights):
        quantized = quantize_model_weights(tiny_weights, bits=8)
        assert np.array_equal(
            quantized.layers[0].attn_ln_gamma, tiny_weights.layers[0].attn_ln_gamma
        )

    def test_eight_bit_error_is_small(self, tiny_weights):
        assert weight_quantization_error(tiny_weights, bits=8) < 0.01

    def test_error_grows_as_bits_shrink(self, tiny_weights):
        errors = [weight_quantization_error(tiny_weights, bits) for bits in (8, 6, 4, 2)]
        assert errors == sorted(errors)

    def test_eight_bit_model_preserves_predictions(self, tiny_config, tiny_weights, small_sequence):
        # The paper's working assumption ("quantized into 8 bits fixed-point
        # representation without accuracy drop") verified on the tiny model.
        token_ids, segment_ids = small_sequence
        full = TransformerModel(tiny_config, weights=tiny_weights)
        quantized = TransformerModel(
            tiny_config, weights=quantize_model_weights(tiny_weights, bits=8)
        )
        assert (
            full.classify(token_ids, segment_ids=segment_ids).prediction
            == quantized.classify(token_ids, segment_ids=segment_ids).prediction
        )
        assert np.allclose(
            full.classify(token_ids, segment_ids=segment_ids).logits,
            quantized.classify(token_ids, segment_ids=segment_ids).logits,
            atol=0.1,
        )

    def test_two_bit_model_does_degrade(self, tiny_config, tiny_weights, small_sequence):
        token_ids, segment_ids = small_sequence
        full = TransformerModel(tiny_config, weights=tiny_weights)
        crushed = TransformerModel(
            tiny_config, weights=quantize_model_weights(tiny_weights, bits=2)
        )
        full_logits = full.classify(token_ids, segment_ids=segment_ids).logits
        crushed_logits = crushed.classify(token_ids, segment_ids=segment_ids).logits
        assert not np.allclose(full_logits, crushed_logits, atol=0.05)

    def test_heads_are_quantized_too(self, tiny_weights):
        quantized = quantize_model_weights(tiny_weights, bits=8)
        assert quantized.classifier_w is not None
        assert not np.array_equal(quantized.classifier_w, tiny_weights.classifier_w)
