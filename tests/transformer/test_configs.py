"""Tests for the model / dataset configuration zoo (Table 1)."""

from __future__ import annotations

import pytest

from repro.transformer.configs import (
    BERT_BASE,
    BERT_LARGE,
    DATASET_ZOO,
    DISTILBERT,
    FIG6_EVALUATION_PAIRS,
    FIG7_EVALUATION_PAIRS,
    MODEL_ZOO,
    MRPC,
    ROBERTA,
    RTE,
    SQUAD_V11,
    ModelConfig,
    get_dataset_config,
    get_model_config,
)


class TestModelZoo:
    def test_table1_model_rows(self):
        # Table 1 (top): layers / hidden dim / heads for the four models.
        assert (DISTILBERT.num_layers, DISTILBERT.hidden_dim, DISTILBERT.num_heads) == (6, 768, 12)
        assert (BERT_BASE.num_layers, BERT_BASE.hidden_dim, BERT_BASE.num_heads) == (12, 768, 12)
        assert (ROBERTA.num_layers, ROBERTA.hidden_dim, ROBERTA.num_heads) == (12, 768, 12)
        assert (BERT_LARGE.num_layers, BERT_LARGE.hidden_dim, BERT_LARGE.num_heads) == (24, 1024, 16)

    def test_head_dim(self):
        assert BERT_BASE.head_dim == 64
        assert BERT_LARGE.head_dim == 64

    def test_intermediate_dim_defaults_to_4x(self):
        assert BERT_BASE.intermediate_dim == 4 * 768

    def test_invalid_head_count_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(name="bad", num_layers=1, hidden_dim=100, num_heads=3)

    def test_parameter_count_ordering(self):
        assert DISTILBERT.num_parameters < BERT_BASE.num_parameters < BERT_LARGE.num_parameters

    def test_lookup_by_name(self):
        assert get_model_config("BERT-BASE") is BERT_BASE
        with pytest.raises(KeyError):
            get_model_config("gpt-3")

    def test_zoo_contains_all_four_models(self):
        assert set(MODEL_ZOO) == {"distilbert", "bert-base", "roberta", "bert-large"}


class TestDatasetZoo:
    def test_table1_dataset_rows(self):
        # Table 1 (bottom): average / maximum sequence length per dataset.
        assert (SQUAD_V11.avg_length, SQUAD_V11.max_length) == (177, 821)
        assert (RTE.avg_length, RTE.max_length) == (68, 253)
        assert (MRPC.avg_length, MRPC.max_length) == (53, 86)

    def test_max_avg_ratios_match_table1(self):
        assert SQUAD_V11.max_avg_ratio == pytest.approx(4.6, abs=0.05)
        assert RTE.max_avg_ratio == pytest.approx(3.7, abs=0.05)
        assert MRPC.max_avg_ratio == pytest.approx(1.6, abs=0.05)

    def test_metrics(self):
        assert SQUAD_V11.metric == "f1"
        assert RTE.metric == "accuracy"
        assert MRPC.metric == "f1"

    def test_lookup_by_name(self):
        assert get_dataset_config("SQUAD") is SQUAD_V11
        with pytest.raises(KeyError):
            get_dataset_config("imdb")

    def test_zoo_contains_all_three_datasets(self):
        assert set(DATASET_ZOO) == {"squad", "rte", "mrpc"}


class TestEvaluationPairs:
    def test_fig6_has_ten_pairs(self):
        assert len(FIG6_EVALUATION_PAIRS) == 10

    def test_fig7_has_four_pairs(self):
        assert len(FIG7_EVALUATION_PAIRS) == 4

    def test_all_pairs_resolve(self):
        for model_key, dataset_key in FIG6_EVALUATION_PAIRS + FIG7_EVALUATION_PAIRS:
            assert get_model_config(model_key)
            assert get_dataset_config(dataset_key)

    def test_bert_large_only_evaluated_on_squad(self):
        large_pairs = [d for m, d in FIG6_EVALUATION_PAIRS if m == "bert-large"]
        assert large_pairs == ["squad"]
